package core

import (
	"testing"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
	"dlbooster/internal/metrics"
)

// TestFlightOnlyBoosterRecordsSpans builds a booster with a flight
// recorder but NO metrics registry: span stamping must still run (the
// recorder's whole point is working without tracing enabled), completed
// spans must land in the recorder's ring, and the degradation event must
// reach it as a note — while the per-image stage histograms stay off,
// preserving the cheap-by-default contract.
func TestFlightOnlyBoosterRecordsSpans(t *testing.T) {
	const n = 12
	items := chaosItems(t, n)
	flight := metrics.NewFlightRecorder(metrics.FlightConfig{})
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		Flight: flight,
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	<-results
	assertPoolBalanced(t, b)

	if got := flight.SpansRecorded(); got != 3 {
		t.Fatalf("flight recorder saw %d spans, want 3", got)
	}
	d := flight.Contents("test")
	for _, sp := range d.Spans {
		if sp.Collected.IsZero() || sp.Published.IsZero() || sp.Recycled.IsZero() {
			t.Fatalf("span %d has unstamped lifecycle: %+v", sp.Batch, sp)
		}
		if sp.Images != sp.FPGA+sp.Fallback+sp.Failed {
			t.Fatalf("span %d breaks conservation: %+v", sp.Batch, sp)
		}
	}
	// No registry was attached, so the internal registry must have
	// recorded no per-image stage observations (flight-only ≠ traced).
	if s := b.Snapshot(); s.Stages[metrics.StageFPGADecode].Count != 0 {
		t.Fatalf("flight-only booster observed %d decode latencies, want 0",
			s.Stages[metrics.StageFPGADecode].Count)
	}
}

// TestDegradedEventReachesFlight wires fault injection so the booster
// degrades, and asserts the "degraded" event forwards into the flight
// recorder's note ring via the internal registry.
func TestDegradedEventReachesFlight(t *testing.T) {
	items := chaosItems(t, 16)
	flight := metrics.NewFlightRecorder(metrics.FlightConfig{})
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA:       fpga.Config{Inject: faults.New(faults.Config{FailEvery: 1})},
		Resilience: Resilience{FallbackAfter: 2},
		Flight:     flight,
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	<-results

	if !b.Degraded() {
		t.Fatal("booster never degraded under fail-rate=1")
	}
	deadline := time.Now().Add(time.Second)
	for {
		var found bool
		for _, note := range flight.Contents("test").Notes {
			if note.Name == "degraded" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded note never reached the flight recorder: %+v",
				flight.Contents("test").Notes)
		}
		time.Sleep(time.Millisecond)
	}
}
