// Package core implements DLBooster itself: the host bridger of paper
// §3.4 — the asynchronous FPGAReader (Algorithm 1) driving the FPGA
// decoder, the HugePage MemManager (Algorithm 2, via internal/hugepage),
// the round-robin asynchronous Dispatcher (Algorithm 3) feeding GPU
// compute engines, and the hybrid first-epoch cache of §3.1. The API
// surface mirrors Table 1 of the paper; see table1_test.go for the
// name-by-name mapping.
package core

import (
	"time"

	"dlbooster/internal/gpu"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/metrics"
)

// ItemMeta carries per-image bookkeeping across the pipeline: identity
// for training labels, timestamps for the online-inference latency
// metric (receipt → prediction, §5.3).
type ItemMeta struct {
	Label      int
	ClientID   int
	Seq        int
	ReceivedAt time.Time
}

// Batch is one filled HugePage buffer carrying Images decoded rasters of
// identical geometry, laid out back to back at ImageBytes stride — the
// large-block unit whose single-copy dispatch is DLBooster's first
// performance lever (§5.2 reason 1).
type Batch struct {
	Buf         *hugepage.Buffer
	Images      int
	W, H, C     int
	Metas       []ItemMeta
	Valid       []bool // false marks slots whose decode failed
	Seq         int    // batch sequence number
	AssembledAt time.Time
	// Trace is the batch's observability span, stamped at each pipeline
	// stage and completed at recycle. It is nil unless the Booster was
	// built with a metrics registry, so untraced runs carry no cost.
	Trace *metrics.Span
}

// ImageBytes returns the per-slot stride.
func (b *Batch) ImageBytes() int { return b.W * b.H * b.C }

// Bytes returns the filled prefix of the underlying buffer.
func (b *Batch) Bytes() []byte { return b.Buf.Bytes()[:b.Images*b.ImageBytes()] }

// Image returns the raster bytes of slot i.
func (b *Batch) Image(i int) []byte {
	s := b.ImageBytes()
	return b.Buf.Bytes()[i*s : (i+1)*s]
}

// ValidCount returns the number of successfully decoded slots.
func (b *Batch) ValidCount() int {
	n := 0
	for _, v := range b.Valid {
		if v {
			n++
		}
	}
	return n
}

// DeviceBatch is a batch landed in GPU memory, handed to a compute
// engine through its Trans Queue.
type DeviceBatch struct {
	Buf     *gpu.Buffer
	Images  int
	W, H, C int
	Metas   []ItemMeta
	Valid   []bool
	Seq     int
}

// ImageBytes returns the per-slot stride.
func (b *DeviceBatch) ImageBytes() int { return b.W * b.H * b.C }

// ValidCount returns the number of slots carrying a successfully
// decoded image. Engines pace modelled compute and the exact
// infer/train image counters on this, so a short deadline-flushed
// batch or one with failed slots never inflates the figures. Slots
// beyond len(Valid) count as valid (a nil Valid means all good).
func (b *DeviceBatch) ValidCount() int {
	n := b.Images
	for i, v := range b.Valid {
		if i >= b.Images {
			break
		}
		if !v {
			n--
		}
	}
	return n
}
