package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/metrics"
	"dlbooster/internal/queue"
)

// Config assembles a DLBooster backend.
type Config struct {
	// BatchSize is images per batch buffer (per-GPU batch in the paper).
	BatchSize int
	// OutW/OutH/Channels is the decoder output geometry (the resizer's
	// target, e.g. 224×224×3).
	OutW, OutH, Channels int
	// PoolBatches is the number of HugePage batch buffers (default 8).
	// It bounds decode-ahead: when all are in flight, the FPGAReader
	// blocks, which is the back-pressure of Algorithm 1.
	PoolBatches int
	// FPGA is the decoder geometry (zero value = the paper's 4/2/1).
	FPGA fpga.Config
	// FPGADevices is the number of decoder boards; commands round-robin
	// across them. "The bottleneck can be overcome by plugging more
	// FPGA devices" (§5.3). Default 1.
	FPGADevices int
	// Mirror names the decoder image to load (default "jpeg").
	Mirror string
	// Source resolves disk DataRefs (nil if inputs are inline/NIC).
	Source fpga.DataSource
	// CacheLimitBytes enables the hybrid first-epoch cache of §3.1 when
	// positive: processed batches are retained in memory up to the
	// limit, and later epochs replay from memory. MNIST fits; ILSVRC
	// does not (Figure 6 discussion).
	CacheLimitBytes int64
}

func (c *Config) normalize() error {
	if c.BatchSize <= 0 {
		return errors.New("core: batch size must be positive")
	}
	if c.OutW <= 0 || c.OutH <= 0 {
		return fmt.Errorf("core: bad output geometry %dx%d", c.OutW, c.OutH)
	}
	if c.Channels != 1 && c.Channels != 3 {
		return fmt.Errorf("core: channels %d must be 1 or 3", c.Channels)
	}
	if c.PoolBatches == 0 {
		c.PoolBatches = 8
	}
	if c.PoolBatches < 2 {
		return errors.New("core: need at least 2 pool batches for pipelining")
	}
	if c.Mirror == "" {
		c.Mirror = "jpeg"
	}
	if c.FPGADevices == 0 {
		c.FPGADevices = 1
	}
	if c.FPGADevices < 0 {
		return fmt.Errorf("core: %d FPGA devices", c.FPGADevices)
	}
	return nil
}

// Booster is the DLBooster data-preprocessing backend.
type Booster struct {
	cfg  Config
	pool *hugepage.Pool
	devs []*fpga.Device
	ch   *FPGAChannel
	full *queue.Queue[*Batch]

	images metrics.Counter
	errors metrics.Counter
	seq    int
	cmdID  uint64

	cacheMu       sync.Mutex
	cache         []cachedBatch
	cacheBytes    int64
	cacheOverflow bool

	closeOnce sync.Once
}

type cachedBatch struct {
	data   []byte
	metas  []ItemMeta
	valid  []bool
	images int
}

// New builds the backend: HugePage pool, FPGA device with the requested
// mirror, and the Full_Batch_Queue the Dispatcher consumes.
func New(cfg Config) (*Booster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	imageBytes := cfg.OutW * cfg.OutH * cfg.Channels
	pool, err := hugepage.NewPool(imageBytes*cfg.BatchSize, cfg.PoolBatches)
	if err != nil {
		return nil, err
	}
	mirror, err := fpga.LoadMirror(cfg.Mirror)
	if err != nil {
		return nil, err
	}
	devs := make([]*fpga.Device, cfg.FPGADevices)
	for i := range devs {
		dev, err := fpga.New(cfg.FPGA, pool.Arena(), cfg.Source, mirror)
		if err != nil {
			for _, d := range devs[:i] {
				d.Close()
			}
			return nil, err
		}
		devs[i] = dev
	}
	return &Booster{
		cfg:  cfg,
		pool: pool,
		devs: devs,
		ch:   newFPGAChannel(devs),
		full: queue.New[*Batch](cfg.PoolBatches),
	}, nil
}

// Batches returns the Full_Batch_Queue the Dispatcher drains.
func (b *Booster) Batches() *queue.Queue[*Batch] { return b.full }

// Pool exposes the MemManager, for tests and the Table 1 surface.
func (b *Booster) Pool() *hugepage.Pool { return b.pool }

// Device exposes the first FPGA decoder, for stats.
func (b *Booster) Device() *fpga.Device { return b.devs[0] }

// Devices exposes every FPGA decoder board.
func (b *Booster) Devices() []*fpga.Device { return b.devs }

// Channel exposes the FPGAChannel bound to the decoder (Table 1).
func (b *Booster) Channel() *FPGAChannel { return b.ch }

// Images returns the count of successfully decoded images.
func (b *Booster) Images() int64 { return b.images.Value() }

// DecodeErrors returns the count of failed decodes.
func (b *Booster) DecodeErrors() int64 { return b.errors.Value() }

// RecycleBatch returns a consumed batch's buffer to the pool (Table 1
// recycle_item). The Dispatcher calls it after stream synchronisation.
func (b *Booster) RecycleBatch(batch *Batch) error {
	if batch == nil || batch.Buf == nil {
		return errors.New("core: nil batch")
	}
	return b.pool.Put(batch.Buf)
}

// CloseBatches marks the end of the batch stream, letting consumers
// drain and exit.
func (b *Booster) CloseBatches() { b.full.Close() }

// Close tears the backend down.
func (b *Booster) Close() {
	b.closeOnce.Do(func() {
		b.ch.close()
		b.full.Close()
		b.pool.Close()
	})
}

// building tracks one batch buffer being filled by in-flight decodes.
type building struct {
	batch       *Batch
	outstanding int
	sealed      bool
}

// pendingSlot maps a command to its batch slot.
type pendingSlot struct {
	bld  *building
	slot int
}

// RunEpoch drives one pass of the collector through the FPGA decoder —
// Algorithm 1 of the paper. It returns once every input item has been
// decoded (or failed) and every completed batch is on the Full queue. A
// consumer must drain Batches() concurrently, or the pool back-pressure
// will pause the reader once all buffers are in flight.
//
// When the cache is enabled, processed batches are also retained in
// memory (until the limit), making later epochs servable by ReplayCache.
func (b *Booster) RunEpoch(col DataCollector) error {
	if col == nil {
		return errors.New("core: nil collector")
	}
	imageBytes := b.cfg.OutW * b.cfg.OutH * b.cfg.Channels
	pending := make(map[uint64]pendingSlot)
	var cur *building
	stream, _ := col.(StreamingCollector)

	process := func(comps []fpga.Completion) error {
		for _, c := range comps {
			ps, ok := pending[c.ID]
			if !ok {
				return fmt.Errorf("core: completion for unknown cmd %d", c.ID)
			}
			delete(pending, c.ID)
			if c.Err != nil {
				b.errors.Add(1)
				ps.bld.batch.Valid[ps.slot] = false
			} else {
				b.images.Add(1)
				ps.bld.batch.Valid[ps.slot] = true
			}
			ps.bld.outstanding--
			if ps.bld.sealed && ps.bld.outstanding == 0 {
				if err := b.finishBatch(ps.bld.batch); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for {
		var item Item
		var ok bool
		if stream == nil {
			item, ok = col.Next()
		} else {
			// Streaming input can pause indefinitely; keep draining
			// FINISH signals while waiting so in-flight batches publish
			// promptly (the FPGA-handler daemon's job in §3.2 — the
			// paper's closed-loop workload never pauses, but an online
			// server's arrivals do).
			for {
				if len(pending) == 0 {
					item, ok = col.Next()
					break
				}
				var alive bool
				item, ok, alive = stream.NextTimeout(200 * time.Microsecond)
				if ok || !alive {
					break
				}
				if err := process(b.ch.DrainOut()); err != nil {
					return err
				}
			}
		}
		if !ok {
			break
		}
		if cur == nil {
			// Algorithm 1 lines 5–10: peek the free queue; while no
			// buffer is available and decodes are still in flight,
			// process completions (blocking on the FINISH queue rather
			// than the pool — a buffer can only come back through a
			// finished batch or through the consumer, and blocking on
			// the pool alone would deadlock when every buffer belongs
			// to a batch whose completions nobody is draining).
			for !b.pool.Available() && len(pending) > 0 {
				comp, err := b.ch.WaitCompletion()
				if err != nil {
					return fmt.Errorf("core: decoder closed mid-epoch: %w", err)
				}
				if err := process(append([]fpga.Completion{comp}, b.ch.DrainOut()...)); err != nil {
					return err
				}
			}
			buf, err := b.pool.Get()
			if err != nil {
				return fmt.Errorf("core: memory pool closed: %w", err)
			}
			cur = b.newBuilding(buf)
		}
		slot := cur.batch.Images
		cur.batch.Images++
		cur.batch.Metas = append(cur.batch.Metas, item.Meta)
		cur.batch.Valid = append(cur.batch.Valid, false)
		cur.outstanding++
		b.cmdID++
		id := b.cmdID
		pending[id] = pendingSlot{bld: cur, slot: slot}
		// Algorithm 1 lines 11–12: encapsulate the physical address
		// (base + offset of this datum in the batch) into the cmd.
		cmd := fpga.Cmd{
			ID:       id,
			Data:     item.Ref,
			DMAAddr:  cur.batch.Buf.PhysAddr(),
			DMAOff:   slot * imageBytes,
			OutW:     b.cfg.OutW,
			OutH:     b.cfg.OutH,
			Channels: b.cfg.Channels,
		}
		if err := b.ch.SubmitCmd(cmd); err != nil {
			return err
		}
		// Lines 13–15: pull processed batches with best effort.
		if err := process(b.ch.DrainOut()); err != nil {
			return err
		}
		if cur.batch.Images == b.cfg.BatchSize {
			cur.sealed = true
			cur = nil
		}
	}
	// Flush: seal the partial batch and wait out all in-flight decodes.
	if cur != nil {
		cur.sealed = true
		if cur.outstanding == 0 && cur.batch.Images >= 0 {
			if err := b.finishBatch(cur.batch); err != nil {
				return err
			}
		}
		cur = nil
	}
	for len(pending) > 0 {
		comp, err := b.ch.WaitCompletion()
		if err != nil {
			return fmt.Errorf("core: decoder closed with %d decodes outstanding", len(pending))
		}
		if err := process([]fpga.Completion{comp}); err != nil {
			return err
		}
	}
	return nil
}

func (b *Booster) newBuilding(buf *hugepage.Buffer) *building {
	b.seq++
	return &building{batch: &Batch{
		Buf: buf,
		W:   b.cfg.OutW, H: b.cfg.OutH, C: b.cfg.Channels,
		Seq: b.seq,
	}}
}

// finishBatch timestamps, optionally caches, and publishes a batch.
func (b *Booster) finishBatch(batch *Batch) error {
	if batch.Images == 0 {
		// An empty sealed batch (stream ended exactly at a boundary):
		// return the buffer instead of publishing nothing.
		return b.pool.Put(batch.Buf)
	}
	batch.AssembledAt = time.Now()
	if b.cfg.CacheLimitBytes > 0 {
		b.cacheBatch(batch)
	}
	return b.full.Push(batch)
}

func (b *Booster) cacheBatch(batch *Batch) {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	if b.cacheOverflow {
		return
	}
	n := int64(batch.Images * batch.ImageBytes())
	if b.cacheBytes+n > b.cfg.CacheLimitBytes {
		// The dataset does not fit: drop the cache entirely, as keeping
		// a partial epoch would serve skewed data (ILSVRC case).
		b.cacheOverflow = true
		b.cache = nil
		b.cacheBytes = 0
		return
	}
	cb := cachedBatch{
		data:   append([]byte(nil), batch.Bytes()...),
		metas:  append([]ItemMeta(nil), batch.Metas...),
		valid:  append([]bool(nil), batch.Valid...),
		images: batch.Images,
	}
	b.cache = append(b.cache, cb)
	b.cacheBytes += n
}

// CacheComplete reports whether a full epoch is cached and replayable.
func (b *Booster) CacheComplete() bool {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	return b.cfg.CacheLimitBytes > 0 && !b.cacheOverflow && len(b.cache) > 0
}

// CachedBatches returns the number of cached batches.
func (b *Booster) CachedBatches() int {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	return len(b.cache)
}

// ErrCacheUnavailable is returned by ReplayCache when no complete epoch
// is cached (caching disabled, first epoch not run, or dataset too big).
var ErrCacheUnavailable = errors.New("core: epoch cache unavailable")

// ReplayCache serves one epoch from the in-memory cache: the offline-like
// fast path of the hybrid service (§3.1). Batches still flow through
// pool buffers and the Full queue so the downstream pipeline is
// identical.
func (b *Booster) ReplayCache() error {
	b.cacheMu.Lock()
	snapshot := b.cache
	ok := b.cfg.CacheLimitBytes > 0 && !b.cacheOverflow && len(b.cache) > 0
	b.cacheMu.Unlock()
	if !ok {
		return ErrCacheUnavailable
	}
	for _, cb := range snapshot {
		buf, err := b.pool.Get()
		if err != nil {
			return fmt.Errorf("core: memory pool closed: %w", err)
		}
		copy(buf.Bytes(), cb.data)
		b.seq++
		batch := &Batch{
			Buf:    buf,
			Images: cb.images,
			W:      b.cfg.OutW, H: b.cfg.OutH, C: b.cfg.Channels,
			Metas:       append([]ItemMeta(nil), cb.metas...),
			Valid:       append([]bool(nil), cb.valid...),
			Seq:         b.seq,
			AssembledAt: time.Now(),
		}
		b.images.Add(int64(cb.images))
		if err := b.full.Push(batch); err != nil {
			return err
		}
	}
	return nil
}

// FPGAChannel binds the host bridger to its FPGA decoders — the
// FPGAChannel abstraction of §3.4.1, exposing the submit_cmd/drain_out
// API of Table 1. With more than one board, commands round-robin across
// devices and their FINISH signals merge into one completion stream, so
// the FPGAReader is indifferent to how many boards are plugged in.
type FPGAChannel struct {
	devs   []*fpga.Device
	merged *queue.Queue[fpga.Completion]
	fwd    sync.WaitGroup

	mu sync.Mutex
	rr int
}

func newFPGAChannel(devs []*fpga.Device) *FPGAChannel {
	c := &FPGAChannel{
		devs:   devs,
		merged: queue.New[fpga.Completion](256 * len(devs)),
	}
	// One forwarder per board moves FINISH signals into the merged
	// stream; when every board closes, the stream closes.
	for _, d := range devs {
		c.fwd.Add(1)
		go func(d *fpga.Device) {
			defer c.fwd.Done()
			for {
				comp, err := d.WaitCompletion()
				if err != nil {
					return
				}
				if err := c.merged.Push(comp); err != nil {
					return
				}
			}
		}(d)
	}
	go func() {
		c.fwd.Wait()
		c.merged.Close()
	}()
	return c
}

// SubmitCmd submits a decode command to the next board round-robin and
// launches the decoding operation (Table 1: submit_cmd).
func (c *FPGAChannel) SubmitCmd(cmd fpga.Cmd) error {
	c.mu.Lock()
	d := c.devs[c.rr%len(c.devs)]
	c.rr++
	c.mu.Unlock()
	return d.Submit(cmd)
}

// DrainOut queries the decoders' processing signals asynchronously,
// returning all completions so far (Table 1: drain_out).
func (c *FPGAChannel) DrainOut() []fpga.Completion { return c.merged.Drain() }

// WaitCompletion blocks for the next FINISH signal from any board.
func (c *FPGAChannel) WaitCompletion() (fpga.Completion, error) {
	comp, err := c.merged.Pop()
	if err != nil {
		return fpga.Completion{}, fpga.ErrClosed
	}
	return comp, nil
}

// close shuts every board down and waits for the merged stream to end.
func (c *FPGAChannel) close() {
	for _, d := range c.devs {
		d.Close()
	}
	c.fwd.Wait()
}
