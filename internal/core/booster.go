package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/cpukernel"
	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/metrics"
	"dlbooster/internal/pix"
	"dlbooster/internal/queue"
)

// Config assembles a DLBooster backend.
type Config struct {
	// BatchSize is images per batch buffer (per-GPU batch in the paper).
	BatchSize int
	// OutW/OutH/Channels is the decoder output geometry (the resizer's
	// target, e.g. 224×224×3).
	OutW, OutH, Channels int
	// PoolBatches is the number of HugePage batch buffers (default 8).
	// It bounds decode-ahead: when all are in flight, the FPGAReader
	// blocks, which is the back-pressure of Algorithm 1.
	PoolBatches int
	// FPGA is the decoder geometry (zero value = the paper's 4/2/1).
	FPGA fpga.Config
	// FPGADevices is the number of decoder boards; commands round-robin
	// across them. "The bottleneck can be overcome by plugging more
	// FPGA devices" (§5.3). Default 1.
	FPGADevices int
	// Mirror names the decoder image to load (default "jpeg").
	Mirror string
	// Source resolves disk DataRefs (nil if inputs are inline/NIC).
	Source fpga.DataSource
	// CacheLimitBytes is the legacy RAM-only cache knob: when positive
	// (and Cache.RAMBytes is zero) it becomes the RAM-tier budget of the
	// tiered epoch cache, preserving the original §3.1 hybrid-service
	// behaviour. New code should size Cache directly.
	CacheLimitBytes int64
	// Cache configures the tiered first-epoch cache of §3.1: decoded
	// batches are retained in a RAM tier up to Cache.RAMBytes, demoted
	// to the optional NVMe spill tier when RAM fills, and later epochs
	// replay from the tiers (re-decoding only what was evicted). A zero
	// RAMBytes (with CacheLimitBytes also zero) disables caching.
	Cache CacheConfig
	// SharedCache, when non-nil, makes this Booster capture into and
	// replay from a cache owned elsewhere — how fleet shards share one
	// tier pair (see fleet.ReplayShared). It overrides Cache.
	SharedCache *TieredCache
	// BatchTimeout enables deadline-flushed dynamic batching: a partial
	// batch is sealed and dispatched once its oldest item has waited
	// this long, instead of stalling until the batch fills or the
	// stream ends — the bounded receipt-to-prediction promise of the
	// online-inference workflow (Figure 8). It takes effect only with a
	// StreamingCollector (network feeds, item queues); a closed-loop
	// disk epoch never pauses, so the deadline is moot there. 0 (the
	// default) keeps strict batches, the paper's closed-loop behaviour.
	BatchTimeout time.Duration
	// DisableScaledDecode turns off the decode-to-scale fast path on
	// every decode consumer this Booster owns: the FPGA boards' iDCT
	// stages and the degraded-mode CPU fallback all revert to
	// full-resolution reconstruction followed by a full resize. The zero
	// value keeps the fast path on (it is byte-compatible in spirit and
	// parity-tested against the full pipeline; see internal/jpeg).
	DisableScaledDecode bool
	// DisableSIMDKernels engages the process-wide cpukernel kill switch:
	// every decode path (this Booster's, and — because kernel selection
	// is process-global, the kernels being pure functions — any other
	// Booster in the process) pins the portable scalar decode kernels
	// and sequential entropy decode. The fast kernels are byte-exact
	// against scalar, so this trades speed only; it exists as the
	// ablation/escape hatch (mirrors dlbench -no-simd and the
	// DLBOOSTER_NO_SIMD environment variable). One-way: constructing a
	// Booster with the zero value does not re-enable kernels a previous
	// config disabled; use cpukernel.SetScalarOnly(false) for that.
	DisableSIMDKernels bool
	// Resilience is the failure policy (retry, timeout, CPU fallback).
	Resilience Resilience
	// Metrics, when non-nil, enables full observability: per-batch trace
	// spans, per-stage latency histograms and get_item wait timing are
	// recorded into this registry, alongside the pull-based counters,
	// gauges and queue probes the Booster registers regardless. Nil (the
	// default) keeps every hot path free of timestamp and histogram
	// work — Booster.Snapshot still reports counters, queue depths and
	// events, just no stage latencies.
	Metrics *metrics.Registry
	// Flight, when non-nil, attaches an always-on flight recorder: every
	// completed batch span and every event lands in its fixed-size rings,
	// and degradation or command revocation can trigger an automatic
	// post-mortem dump. Independent of Metrics — a flight recorder alone
	// enables per-batch span stamping (a handful of time.Now calls per
	// batch) but not per-image histogram observes.
	Flight *metrics.FlightRecorder
}

// Resilience is the failure policy of the host bridger: how the
// FPGAReader reacts when decode commands fail, stall, or a board
// wedges outright. The zero value preserves the paper's fail-fast
// behaviour: an errored command marks its slot invalid, and a stuck
// board stalls the reader (the paper's closed-loop testbed never sees
// either, but a production deployment does — so the policy degrades
// the pipeline instead of stalling it).
type Resilience struct {
	// MaxRetries resubmits a failed decode command up to N times before
	// settling it (0 = no retries). Retries target transient decoder
	// faults; a payload that genuinely cannot decode burns its retries
	// and settles like any other final failure.
	MaxRetries int
	// RetryBackoff is the pause before the first retry, doubling per
	// attempt. Defaults to 100µs when MaxRetries is set.
	RetryBackoff time.Duration
	// CmdTimeout bounds the FINISH wait per command: an expired command
	// is revoked on its board (fencing any still-pending DMA write, so
	// the batch slot is safe to rescue and the buffer safe to recycle)
	// and settled host-side. If the revocation loses the race — the
	// FINISH was already raised — the command is simply kept pending and
	// settles normally. The same bound applies to submission, so the
	// full FIFO of a wedged board sheds work instead of blocking the
	// reader forever (0 = wait forever).
	CmdTimeout time.Duration
	// FallbackAfter engages graceful degradation: after N consecutive
	// final FPGA failures the booster reroutes decode work to the CPU
	// backend path and records the switch in the event log. While
	// fallback is configured, every finally-failed command is also
	// rescued by a CPU decode, so a dead decoder loses no images
	// (0 = disabled).
	FallbackAfter int
}

func (r Resilience) normalize() (Resilience, error) {
	if r.MaxRetries < 0 || r.FallbackAfter < 0 {
		return r, fmt.Errorf("core: negative resilience counters %+v", r)
	}
	if r.RetryBackoff < 0 || r.CmdTimeout < 0 {
		return r, fmt.Errorf("core: negative resilience durations %+v", r)
	}
	if r.MaxRetries > 0 && r.RetryBackoff == 0 {
		r.RetryBackoff = 100 * time.Microsecond
	}
	return r, nil
}

func (c *Config) normalize() error {
	if c.BatchSize <= 0 {
		return errors.New("core: batch size must be positive")
	}
	res, err := c.Resilience.normalize()
	if err != nil {
		return err
	}
	c.Resilience = res
	if c.OutW <= 0 || c.OutH <= 0 {
		return fmt.Errorf("core: bad output geometry %dx%d", c.OutW, c.OutH)
	}
	if c.BatchTimeout < 0 {
		return fmt.Errorf("core: negative batch timeout %v", c.BatchTimeout)
	}
	if c.Channels != 1 && c.Channels != 3 {
		return fmt.Errorf("core: channels %d must be 1 or 3", c.Channels)
	}
	if c.PoolBatches == 0 {
		c.PoolBatches = 8
	}
	if c.PoolBatches < 2 {
		return errors.New("core: need at least 2 pool batches for pipelining")
	}
	if c.Mirror == "" {
		c.Mirror = "jpeg"
	}
	if c.FPGADevices == 0 {
		c.FPGADevices = 1
	}
	if c.FPGADevices < 0 {
		return fmt.Errorf("core: %d FPGA devices", c.FPGADevices)
	}
	if c.DisableScaledDecode {
		c.FPGA.DisableScaledDecode = true
	}
	if c.DisableSIMDKernels {
		cpukernel.SetScalarOnly(true)
	}
	if c.Cache.RAMBytes == 0 && c.CacheLimitBytes > 0 {
		c.Cache.RAMBytes = c.CacheLimitBytes
	}
	return nil
}

// Booster is the DLBooster data-preprocessing backend.
type Booster struct {
	cfg    Config
	pool   *hugepage.Pool
	devs   []*fpga.Device
	mirror fpga.Mirror
	ch     *FPGAChannel
	full   *queue.Queue[*Batch]

	images       metrics.Counter
	errors       metrics.Counter
	collected    metrics.Counter
	published    metrics.Counter
	partialFlush metrics.Counter
	seq          int
	cmdID        uint64

	// reg is never nil: the user's registry when Config.Metrics was set
	// (traced = full span/latency instrumentation), otherwise an
	// internal one carrying only pull-based probes so Snapshot always
	// answers.
	reg    *metrics.Registry
	traced bool
	// flight is the optional always-on recorder (nil-safe to call).
	// spanned gates per-batch span stamping: on when either the full
	// registry instrumentation or a flight recorder wants spans.
	flight  *metrics.FlightRecorder
	spanned bool

	// scaledCPU counts CPU-fallback decodes that took the
	// decode-to-scale fast path below full resolution; the boards keep
	// their own per-device counters.
	scaledCPU metrics.Counter

	// Runtime-tunable knob block (see knobs.go): the dynamic-batching
	// deadline and the fractional CPU decode share, seeded from Config
	// at New and retunable from any goroutine while epochs run.
	batchTimeoutNs atomic.Int64
	cpuShareUnits  atomic.Int64
	// offloads counts images the fractional offload knob routed to the
	// CPU decode path (distinct from failure-driven fallbacks).
	offloads metrics.Counter

	// Failure-policy accounting (see Resilience).
	retries      metrics.Counter
	timeouts     metrics.Counter
	fallbacks    metrics.Counter
	lateFinishes metrics.Counter
	consecFails  atomic.Int64
	degraded     atomic.Bool

	// cache is the tiered first-epoch cache (§3.1 hybrid service), nil
	// when caching is disabled. It may be shared across Boosters (fleet
	// shards) via Config.SharedCache. replaying suppresses capture while
	// ReplayCacheShard re-decodes evicted entries — without it every
	// replay would re-admit them as duplicate entries and later epochs
	// would serve those items twice.
	cache     *TieredCache
	replaying atomic.Bool

	// Cache-hit accounting (§3.1 hybrid service): images and bytes
	// served from the cache tiers instead of the decoder, split by the
	// tier that served them, plus the evicted images replay had to
	// re-decode. Per-Booster even when the cache is shared, so a fleet
	// rollup sums without double-counting.
	cacheReplayImages   metrics.Counter
	cacheReplayBytes    metrics.Counter
	cacheRAMHitImages   metrics.Counter
	cacheSpillHitImages metrics.Counter
	cacheRedecodeImages metrics.Counter

	closeOnce sync.Once
}

// New builds the backend: HugePage pool, FPGA device with the requested
// mirror, and the Full_Batch_Queue the Dispatcher consumes.
func New(cfg Config) (*Booster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	imageBytes := cfg.OutW * cfg.OutH * cfg.Channels
	pool, err := hugepage.NewPool(imageBytes*cfg.BatchSize, cfg.PoolBatches)
	if err != nil {
		return nil, err
	}
	mirror, err := fpga.LoadMirror(cfg.Mirror)
	if err != nil {
		return nil, err
	}
	devs := make([]*fpga.Device, cfg.FPGADevices)
	for i := range devs {
		dev, err := fpga.New(cfg.FPGA, pool.Arena(), cfg.Source, mirror)
		if err != nil {
			for _, d := range devs[:i] {
				d.Close()
			}
			return nil, err
		}
		devs[i] = dev
	}
	cache := cfg.SharedCache
	if cache == nil && cfg.Cache.RAMBytes > 0 {
		cache, err = NewTieredCache(cfg.Cache)
		if err != nil {
			for _, d := range devs {
				d.Close()
			}
			pool.Close()
			return nil, err
		}
	}
	b := &Booster{
		cfg:    cfg,
		pool:   pool,
		devs:   devs,
		mirror: mirror,
		ch:     newFPGAChannel(devs),
		full:   queue.New[*Batch](cfg.PoolBatches),
		cache:  cache,
		reg:    cfg.Metrics,
		traced: cfg.Metrics != nil,
		flight: cfg.Flight,
	}
	b.spanned = b.traced || b.flight != nil
	b.batchTimeoutNs.Store(int64(cfg.BatchTimeout))
	if b.reg == nil {
		b.reg = metrics.NewRegistry()
	}
	if b.flight != nil {
		b.reg.AttachFlight(b.flight)
	}
	b.instrument()
	return b, nil
}

// instrument registers the Booster's pull-based telemetry: counters the
// pipeline maintains anyway, queue-depth probes and per-board decoder
// stats. Everything here is read only at Snapshot time, so registration
// costs the hot path nothing — the cheap-by-default contract.
func (b *Booster) instrument() {
	r := b.reg
	r.RegisterCounterFunc("items_collected_total", b.collected.Value)
	r.RegisterCounterFunc("images_decoded_total", b.images.Value)
	r.RegisterCounterFunc("decode_errors_total", b.errors.Value)
	r.RegisterCounterFunc("decode_retries_total", b.retries.Value)
	r.RegisterCounterFunc("cmd_timeouts_total", b.timeouts.Value)
	r.RegisterCounterFunc("fallback_decodes_total", b.fallbacks.Value)
	r.RegisterCounterFunc("late_finishes_total", b.lateFinishes.Value)
	r.RegisterCounterFunc("batches_published_total", b.published.Value)
	r.RegisterCounterFunc("serve_partial_flushes_total", b.partialFlush.Value)
	r.RegisterCounterFunc("offload_decodes_total", b.offloads.Value)
	r.RegisterCounterFunc("cache_replay_images_total", b.cacheReplayImages.Value)
	r.RegisterCounterFunc("cache_replay_bytes_total", b.cacheReplayBytes.Value)
	r.RegisterCounterFunc("cache_ram_hit_images_total", b.cacheRAMHitImages.Value)
	r.RegisterCounterFunc("cache_spill_hit_images_total", b.cacheSpillHitImages.Value)
	r.RegisterCounterFunc("cache_redecode_images_total", b.cacheRedecodeImages.Value)
	r.RegisterCounterFunc("cache_demotions_total", func() int64 { return b.cacheStats().Demotions })
	r.RegisterCounterFunc("cache_promotions_total", func() int64 { return b.cacheStats().Promotions })
	r.RegisterCounterFunc("cache_evictions_total", func() int64 { return b.cacheStats().Evictions })
	r.RegisterCounterFunc("cache_spill_writes_total", func() int64 { return b.cacheStats().SpillWrites })
	r.RegisterCounterFunc("cache_spill_write_bytes_total", func() int64 { return b.cacheStats().SpillWriteBytes })
	r.RegisterCounterFunc("cache_spill_read_bytes_total", func() int64 { return b.cacheStats().SpillReadBytes })
	r.RegisterCounterFunc("decode_scaled_total", func() int64 {
		n := b.scaledCPU.Value()
		for _, d := range b.devs {
			n += d.ScaledDecodes()
		}
		return n
	})
	// Kernel-layer counters. These are process-global (kernel selection
	// is, too — see internal/cpukernel), so in a multi-Booster process
	// every registry reports the same totals rather than a per-Booster
	// share; the doc rows in docs/METRICS.md carry the same caveat.
	r.RegisterCounterFunc("decode_kernel_simd_total", jpeg.KernelSIMDDecodes)
	r.RegisterCounterFunc("decode_parallel_scans_total", jpeg.ParallelScans)
	r.RegisterGauge("degraded", func() float64 {
		if b.degraded.Load() {
			return 1
		}
		return 0
	})
	// Knob gauges: the effective runtime-tunable values, so a retune by
	// the autotuner is visible in every snapshot and history sample.
	r.RegisterGauge("knob_batch_timeout_ms", func() float64 {
		return float64(b.BatchTimeout()) / float64(time.Millisecond)
	})
	r.RegisterGauge("knob_cpu_share", b.CPUShare)
	r.RegisterGauge("cache_batches", func() float64 { return float64(b.CachedBatches()) })
	r.RegisterGauge("cache_bytes", func() float64 { return float64(b.cacheStats().RAMBytes) })
	r.RegisterGauge("cache_spill_bytes", func() float64 { return float64(b.cacheStats().SpillBytes) })
	r.RegisterQueue("full_batch", b.full.Len, b.full.Cap)
	r.RegisterQueue("fpga_completions", b.ch.merged.Len, b.ch.merged.Cap)
	b.pool.Instrument(r, b.traced)
	for i, d := range b.devs {
		d.Instrument(r, fmt.Sprintf("fpga%d", i))
	}
}

// Snapshot returns the unified telemetry view of the backend: every
// counter, queue depth, gauge, decoder stage stat and event — plus
// per-stage latency histograms and recent batch spans when the Booster
// was built with Config.Metrics set.
func (b *Booster) Snapshot() *metrics.PipelineSnapshot { return b.reg.Snapshot() }

// Registry exposes the Booster's metrics registry, so callers can hang
// additional instruments (dispatcher queues, engine latencies) off the
// same snapshot.
func (b *Booster) Registry() *metrics.Registry { return b.reg }

// Batches returns the Full_Batch_Queue the Dispatcher drains.
func (b *Booster) Batches() *queue.Queue[*Batch] { return b.full }

// Pool exposes the MemManager, for tests and the Table 1 surface.
func (b *Booster) Pool() *hugepage.Pool { return b.pool }

// Device exposes the first FPGA decoder, for stats.
func (b *Booster) Device() *fpga.Device { return b.devs[0] }

// Devices exposes every FPGA decoder board.
func (b *Booster) Devices() []*fpga.Device { return b.devs }

// Channel exposes the FPGAChannel bound to the decoder (Table 1).
func (b *Booster) Channel() *FPGAChannel { return b.ch }

// Images returns the count of successfully decoded images.
func (b *Booster) Images() int64 { return b.images.Value() }

// DecodeErrors returns the count of failed decodes.
func (b *Booster) DecodeErrors() int64 { return b.errors.Value() }

// Retries returns the count of decode-command resubmissions.
func (b *Booster) Retries() int64 { return b.retries.Value() }

// CmdTimeouts returns the count of commands settled by timeout (FINISH
// never arrived, or the board FIFO never accepted the submit).
func (b *Booster) CmdTimeouts() int64 { return b.timeouts.Value() }

// FallbackDecodes returns the count of images decoded on the CPU
// fallback path instead of the FPGA.
func (b *Booster) FallbackDecodes() int64 { return b.fallbacks.Value() }

// LateFinishes returns the count of commands whose FINISH beat the
// timeout sweep's revocation attempt: the command looked expired but
// had already completed, so it was kept pending and settled normally.
func (b *Booster) LateFinishes() int64 { return b.lateFinishes.Value() }

// PartialFlushes returns the count of batches sealed by the
// BatchTimeout deadline before filling — the dynamic-batching flushes
// that keep online-serving latency bounded.
func (b *Booster) PartialFlushes() int64 { return b.partialFlush.Value() }

// Degraded reports whether the booster has switched decode work to the
// CPU fallback path.
func (b *Booster) Degraded() bool { return b.degraded.Load() }

// Events exposes the failure-event log (degraded-mode switches).
func (b *Booster) Events() []metrics.Event { return b.reg.Events() }

// noteFPGAFailure tracks a final (unretried or unretriable) FPGA
// failure and engages degraded mode at the configured threshold.
func (b *Booster) noteFPGAFailure() {
	n := b.consecFails.Add(1)
	fa := b.cfg.Resilience.FallbackAfter
	if fa > 0 && n >= int64(fa) && b.degraded.CompareAndSwap(false, true) {
		b.reg.Event("degraded",
			fmt.Sprintf("FPGA→CPU fallback engaged after %d consecutive decoder failures", n))
	}
}

// noteFPGASuccess resets the consecutive-failure streak.
func (b *Booster) noteFPGASuccess() { b.consecFails.Store(0) }

// backoffDur returns the pause before retry `attempt` (1-based),
// doubling from the configured base. The reader never sleeps it
// inline — a retry is scheduled by deadline (pendingSlot.retryAt) and
// resubmitted from the event-loop sweep, so one command backing off
// does not head-of-line block completion draining for every other.
func (b *Booster) backoffDur(attempt int) time.Duration {
	d := b.cfg.Resilience.RetryBackoff
	if d <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 10 {
		shift = 10 // cap: backoff is damage control, not a parking lot
	}
	return d << shift
}

// cpuDecode is the degraded-mode decode path: the same mirror stages
// the FPGA would run (parse → entropy decode → reconstruct → resize)
// executed on the host CPU, writing into the same HugePage batch slot,
// so the downstream Dispatcher and engines see identical batches.
func (b *Booster) cpuDecode(ref fpga.DataRef, dst []byte) error {
	data := ref.Inline
	if data == nil {
		if b.cfg.Source == nil {
			return fpga.ErrNoData
		}
		var err error
		data, err = b.cfg.Source.Fetch(ref)
		if err != nil {
			return err
		}
	}
	job, err := b.mirror.Parse(data)
	if err != nil {
		return err
	}
	job, err = b.mirror.EntropyDecode(job)
	if err != nil {
		return err
	}
	var img *pix.Image
	if sm, ok := b.mirror.(fpga.ScaledMirror); ok && !b.cfg.DisableScaledDecode {
		var scale int
		img, scale, err = sm.ReconstructScaled(job, b.cfg.OutW, b.cfg.OutH)
		if err == nil && scale < 8 {
			b.scaledCPU.Add(1)
		}
	} else {
		img, err = b.mirror.Reconstruct(job)
	}
	if err != nil {
		return err
	}
	if img.C != b.cfg.Channels {
		return fmt.Errorf("core: decoded %d channels, want %d", img.C, b.cfg.Channels)
	}
	out, err := pix.FromBytes(b.cfg.OutW, b.cfg.OutH, b.cfg.Channels, dst)
	if err != nil {
		return err
	}
	return imageproc.ResizeInto(img, out, imageproc.Bilinear)
}

// RecycleBatch returns a consumed batch's buffer to the pool (Table 1
// recycle_item). The Dispatcher calls it after stream synchronisation.
// A traced batch's span terminates here: the recycle timestamp is
// stamped and the completed span handed to the registry exactly once.
func (b *Booster) RecycleBatch(batch *Batch) error {
	if batch == nil || batch.Buf == nil {
		return errors.New("core: nil batch")
	}
	if tr := batch.Trace; tr != nil {
		batch.Trace = nil
		tr.Recycled = time.Now()
		b.reg.CompleteSpan(*tr)
	}
	return b.pool.Put(batch.Buf)
}

// CloseBatches marks the end of the batch stream, letting consumers
// drain and exit.
func (b *Booster) CloseBatches() { b.full.Close() }

// Close tears the backend down.
func (b *Booster) Close() {
	b.closeOnce.Do(func() {
		b.ch.close()
		b.full.Close()
		b.pool.Close()
	})
}

// cacheStats snapshots the tiered cache (zero value when caching is
// disabled), backing the cache gauges and counters.
func (b *Booster) cacheStats() CacheStats {
	if b.cache == nil {
		return CacheStats{}
	}
	return b.cache.Stats()
}

// Cache exposes the tiered epoch cache (nil when caching is disabled),
// for sharing with other shards and for tests.
func (b *Booster) Cache() *TieredCache { return b.cache }

// CacheComplete reports whether the whole first epoch is still resident
// across the cache tiers, i.e. a replay would touch the decoder zero
// times.
func (b *Booster) CacheComplete() bool {
	return b.cache != nil && b.cache.Complete()
}

// CacheReplayable reports whether ReplayCache can serve an epoch at
// all — possibly re-decoding evicted batches through the decode path.
// Weaker than CacheComplete: use it when a partially-cached epoch is
// still worth replaying.
func (b *Booster) CacheReplayable() bool {
	return b.cache != nil && b.cache.Available() == nil
}

// CachedBatches returns the number of captured batches still resident
// in some cache tier (evicted entries excluded).
func (b *Booster) CachedBatches() int {
	if b.cache == nil {
		return 0
	}
	st := b.cache.Stats()
	return st.RAMResident + st.SpillResident
}

// ReplayCache serves one epoch from the tiered cache: the offline-like
// fast path of the hybrid service (§3.1). RAM-tier batches are copied
// into pool buffers, spill-tier batches are read back from the NVMe
// store (paced by its bandwidth model), and evicted batches are
// re-decoded from their retained DataRefs through the ordinary decode
// path — every batch still flows through pool buffers and the Full
// queue so the downstream pipeline is identical either way.
//
// Replayed batches share the cached Metas and Valid slices rather than
// copying them per epoch: cache entries are immutable once written, and
// every downstream consumer (Dispatcher, engines) treats a published
// batch's Metas/Valid as read-only, so the aliasing is safe and saves
// two allocations per batch per replayed epoch.
//
// When nothing can be served the error wraps ErrCacheUnavailable with
// the cause — disabled, never filled, over the RAM limit with no spill
// tier, or fully evicted (see docs/API.md).
func (b *Booster) ReplayCache() error { return b.ReplayCacheShard(0, 1) }

// ReplayCacheShard replays this Booster's 1/shards slice of the cached
// epoch — entry indices congruent to shard modulo shards. The fleet
// uses it to fan one shared cache out across shards (fleet.ReplayShared);
// single-pipeline callers use ReplayCache.
func (b *Booster) ReplayCacheShard(shard, shards int) error {
	if b.cache == nil {
		return ErrCacheDisabled
	}
	sink := CacheReplaySink{
		GetBuffer: func() (*hugepage.Buffer, error) {
			buf, err := b.pool.Get()
			if err != nil {
				return nil, fmt.Errorf("core: memory pool closed: %w", err)
			}
			return buf, nil
		},
		Publish: func(buf *hugepage.Buffer, images int, metas []ItemMeta, valid []bool, tier CacheTier) error {
			b.seq++
			batch := &Batch{
				Buf:    buf,
				Images: images,
				W:      b.cfg.OutW, H: b.cfg.OutH, C: b.cfg.Channels,
				Metas:       metas,
				Valid:       valid,
				Seq:         b.seq,
				AssembledAt: time.Now(),
			}
			b.images.Add(int64(images))
			b.cacheReplayImages.Add(int64(images))
			b.cacheReplayBytes.Add(int64(images * batch.ImageBytes()))
			switch tier {
			case TierRAM:
				b.cacheRAMHitImages.Add(int64(images))
			case TierSpill:
				b.cacheSpillHitImages.Add(int64(images))
			}
			if err := b.full.Push(batch); err != nil {
				return err
			}
			b.published.Add(1)
			return nil
		},
		Redecode: func(items []Item) error {
			b.cacheRedecodeImages.Add(int64(len(items)))
			b.replaying.Store(true)
			defer b.replaying.Store(false)
			return b.RunEpoch(CollectorFromItems(items))
		},
	}
	return b.cache.Replay(shard, shards, sink)
}
