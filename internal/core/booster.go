package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/metrics"
	"dlbooster/internal/pix"
	"dlbooster/internal/queue"
)

// Config assembles a DLBooster backend.
type Config struct {
	// BatchSize is images per batch buffer (per-GPU batch in the paper).
	BatchSize int
	// OutW/OutH/Channels is the decoder output geometry (the resizer's
	// target, e.g. 224×224×3).
	OutW, OutH, Channels int
	// PoolBatches is the number of HugePage batch buffers (default 8).
	// It bounds decode-ahead: when all are in flight, the FPGAReader
	// blocks, which is the back-pressure of Algorithm 1.
	PoolBatches int
	// FPGA is the decoder geometry (zero value = the paper's 4/2/1).
	FPGA fpga.Config
	// FPGADevices is the number of decoder boards; commands round-robin
	// across them. "The bottleneck can be overcome by plugging more
	// FPGA devices" (§5.3). Default 1.
	FPGADevices int
	// Mirror names the decoder image to load (default "jpeg").
	Mirror string
	// Source resolves disk DataRefs (nil if inputs are inline/NIC).
	Source fpga.DataSource
	// CacheLimitBytes enables the hybrid first-epoch cache of §3.1 when
	// positive: processed batches are retained in memory up to the
	// limit, and later epochs replay from memory. MNIST fits; ILSVRC
	// does not (Figure 6 discussion).
	CacheLimitBytes int64
	// BatchTimeout enables deadline-flushed dynamic batching: a partial
	// batch is sealed and dispatched once its oldest item has waited
	// this long, instead of stalling until the batch fills or the
	// stream ends — the bounded receipt-to-prediction promise of the
	// online-inference workflow (Figure 8). It takes effect only with a
	// StreamingCollector (network feeds, item queues); a closed-loop
	// disk epoch never pauses, so the deadline is moot there. 0 (the
	// default) keeps strict batches, the paper's closed-loop behaviour.
	BatchTimeout time.Duration
	// DisableScaledDecode turns off the decode-to-scale fast path on
	// every decode consumer this Booster owns: the FPGA boards' iDCT
	// stages and the degraded-mode CPU fallback all revert to
	// full-resolution reconstruction followed by a full resize. The zero
	// value keeps the fast path on (it is byte-compatible in spirit and
	// parity-tested against the full pipeline; see internal/jpeg).
	DisableScaledDecode bool
	// Resilience is the failure policy (retry, timeout, CPU fallback).
	Resilience Resilience
	// Metrics, when non-nil, enables full observability: per-batch trace
	// spans, per-stage latency histograms and get_item wait timing are
	// recorded into this registry, alongside the pull-based counters,
	// gauges and queue probes the Booster registers regardless. Nil (the
	// default) keeps every hot path free of timestamp and histogram
	// work — Booster.Snapshot still reports counters, queue depths and
	// events, just no stage latencies.
	Metrics *metrics.Registry
	// Flight, when non-nil, attaches an always-on flight recorder: every
	// completed batch span and every event lands in its fixed-size rings,
	// and degradation or command revocation can trigger an automatic
	// post-mortem dump. Independent of Metrics — a flight recorder alone
	// enables per-batch span stamping (a handful of time.Now calls per
	// batch) but not per-image histogram observes.
	Flight *metrics.FlightRecorder
}

// Resilience is the failure policy of the host bridger: how the
// FPGAReader reacts when decode commands fail, stall, or a board
// wedges outright. The zero value preserves the paper's fail-fast
// behaviour: an errored command marks its slot invalid, and a stuck
// board stalls the reader (the paper's closed-loop testbed never sees
// either, but a production deployment does — so the policy degrades
// the pipeline instead of stalling it).
type Resilience struct {
	// MaxRetries resubmits a failed decode command up to N times before
	// settling it (0 = no retries). Retries target transient decoder
	// faults; a payload that genuinely cannot decode burns its retries
	// and settles like any other final failure.
	MaxRetries int
	// RetryBackoff is the pause before the first retry, doubling per
	// attempt. Defaults to 100µs when MaxRetries is set.
	RetryBackoff time.Duration
	// CmdTimeout bounds the FINISH wait per command: an expired command
	// is revoked on its board (fencing any still-pending DMA write, so
	// the batch slot is safe to rescue and the buffer safe to recycle)
	// and settled host-side. If the revocation loses the race — the
	// FINISH was already raised — the command is simply kept pending and
	// settles normally. The same bound applies to submission, so the
	// full FIFO of a wedged board sheds work instead of blocking the
	// reader forever (0 = wait forever).
	CmdTimeout time.Duration
	// FallbackAfter engages graceful degradation: after N consecutive
	// final FPGA failures the booster reroutes decode work to the CPU
	// backend path and records the switch in the event log. While
	// fallback is configured, every finally-failed command is also
	// rescued by a CPU decode, so a dead decoder loses no images
	// (0 = disabled).
	FallbackAfter int
}

func (r Resilience) normalize() (Resilience, error) {
	if r.MaxRetries < 0 || r.FallbackAfter < 0 {
		return r, fmt.Errorf("core: negative resilience counters %+v", r)
	}
	if r.RetryBackoff < 0 || r.CmdTimeout < 0 {
		return r, fmt.Errorf("core: negative resilience durations %+v", r)
	}
	if r.MaxRetries > 0 && r.RetryBackoff == 0 {
		r.RetryBackoff = 100 * time.Microsecond
	}
	return r, nil
}

func (c *Config) normalize() error {
	if c.BatchSize <= 0 {
		return errors.New("core: batch size must be positive")
	}
	res, err := c.Resilience.normalize()
	if err != nil {
		return err
	}
	c.Resilience = res
	if c.OutW <= 0 || c.OutH <= 0 {
		return fmt.Errorf("core: bad output geometry %dx%d", c.OutW, c.OutH)
	}
	if c.BatchTimeout < 0 {
		return fmt.Errorf("core: negative batch timeout %v", c.BatchTimeout)
	}
	if c.Channels != 1 && c.Channels != 3 {
		return fmt.Errorf("core: channels %d must be 1 or 3", c.Channels)
	}
	if c.PoolBatches == 0 {
		c.PoolBatches = 8
	}
	if c.PoolBatches < 2 {
		return errors.New("core: need at least 2 pool batches for pipelining")
	}
	if c.Mirror == "" {
		c.Mirror = "jpeg"
	}
	if c.FPGADevices == 0 {
		c.FPGADevices = 1
	}
	if c.FPGADevices < 0 {
		return fmt.Errorf("core: %d FPGA devices", c.FPGADevices)
	}
	if c.DisableScaledDecode {
		c.FPGA.DisableScaledDecode = true
	}
	return nil
}

// Booster is the DLBooster data-preprocessing backend.
type Booster struct {
	cfg    Config
	pool   *hugepage.Pool
	devs   []*fpga.Device
	mirror fpga.Mirror
	ch     *FPGAChannel
	full   *queue.Queue[*Batch]

	images       metrics.Counter
	errors       metrics.Counter
	collected    metrics.Counter
	published    metrics.Counter
	partialFlush metrics.Counter
	seq          int
	cmdID        uint64

	// reg is never nil: the user's registry when Config.Metrics was set
	// (traced = full span/latency instrumentation), otherwise an
	// internal one carrying only pull-based probes so Snapshot always
	// answers.
	reg    *metrics.Registry
	traced bool
	// flight is the optional always-on recorder (nil-safe to call).
	// spanned gates per-batch span stamping: on when either the full
	// registry instrumentation or a flight recorder wants spans.
	flight  *metrics.FlightRecorder
	spanned bool

	// scaledCPU counts CPU-fallback decodes that took the
	// decode-to-scale fast path below full resolution; the boards keep
	// their own per-device counters.
	scaledCPU metrics.Counter

	// Failure-policy accounting (see Resilience).
	retries      metrics.Counter
	timeouts     metrics.Counter
	fallbacks    metrics.Counter
	lateFinishes metrics.Counter
	consecFails  atomic.Int64
	degraded     atomic.Bool

	cacheMu       sync.Mutex
	cache         []cachedBatch
	cacheBytes    int64
	cacheOverflow bool

	// Cache-hit accounting (§3.1 hybrid service): images and bytes
	// served from the in-memory epoch cache instead of the decoder.
	cacheReplayImages metrics.Counter
	cacheReplayBytes  metrics.Counter

	closeOnce sync.Once
}

// cachedBatch is one immutable epoch-cache entry. Replayed batches alias
// metas and valid directly (only the pixel data is copied into a fresh
// pool buffer), so nothing may mutate these slices after caching — see
// ReplayCache for the contract.
type cachedBatch struct {
	data   []byte
	metas  []ItemMeta
	valid  []bool
	images int
}

// New builds the backend: HugePage pool, FPGA device with the requested
// mirror, and the Full_Batch_Queue the Dispatcher consumes.
func New(cfg Config) (*Booster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	imageBytes := cfg.OutW * cfg.OutH * cfg.Channels
	pool, err := hugepage.NewPool(imageBytes*cfg.BatchSize, cfg.PoolBatches)
	if err != nil {
		return nil, err
	}
	mirror, err := fpga.LoadMirror(cfg.Mirror)
	if err != nil {
		return nil, err
	}
	devs := make([]*fpga.Device, cfg.FPGADevices)
	for i := range devs {
		dev, err := fpga.New(cfg.FPGA, pool.Arena(), cfg.Source, mirror)
		if err != nil {
			for _, d := range devs[:i] {
				d.Close()
			}
			return nil, err
		}
		devs[i] = dev
	}
	b := &Booster{
		cfg:    cfg,
		pool:   pool,
		devs:   devs,
		mirror: mirror,
		ch:     newFPGAChannel(devs),
		full:   queue.New[*Batch](cfg.PoolBatches),
		reg:    cfg.Metrics,
		traced: cfg.Metrics != nil,
		flight: cfg.Flight,
	}
	b.spanned = b.traced || b.flight != nil
	if b.reg == nil {
		b.reg = metrics.NewRegistry()
	}
	if b.flight != nil {
		b.reg.AttachFlight(b.flight)
	}
	b.instrument()
	return b, nil
}

// instrument registers the Booster's pull-based telemetry: counters the
// pipeline maintains anyway, queue-depth probes and per-board decoder
// stats. Everything here is read only at Snapshot time, so registration
// costs the hot path nothing — the cheap-by-default contract.
func (b *Booster) instrument() {
	r := b.reg
	r.RegisterCounterFunc("items_collected_total", b.collected.Value)
	r.RegisterCounterFunc("images_decoded_total", b.images.Value)
	r.RegisterCounterFunc("decode_errors_total", b.errors.Value)
	r.RegisterCounterFunc("decode_retries_total", b.retries.Value)
	r.RegisterCounterFunc("cmd_timeouts_total", b.timeouts.Value)
	r.RegisterCounterFunc("fallback_decodes_total", b.fallbacks.Value)
	r.RegisterCounterFunc("late_finishes_total", b.lateFinishes.Value)
	r.RegisterCounterFunc("batches_published_total", b.published.Value)
	r.RegisterCounterFunc("serve_partial_flushes_total", b.partialFlush.Value)
	r.RegisterCounterFunc("cache_replay_images_total", b.cacheReplayImages.Value)
	r.RegisterCounterFunc("cache_replay_bytes_total", b.cacheReplayBytes.Value)
	r.RegisterCounterFunc("decode_scaled_total", func() int64 {
		n := b.scaledCPU.Value()
		for _, d := range b.devs {
			n += d.ScaledDecodes()
		}
		return n
	})
	r.RegisterGauge("degraded", func() float64 {
		if b.degraded.Load() {
			return 1
		}
		return 0
	})
	r.RegisterGauge("cache_batches", func() float64 { return float64(b.CachedBatches()) })
	r.RegisterGauge("cache_bytes", func() float64 {
		b.cacheMu.Lock()
		defer b.cacheMu.Unlock()
		return float64(b.cacheBytes)
	})
	r.RegisterQueue("full_batch", b.full.Len, b.full.Cap)
	r.RegisterQueue("fpga_completions", b.ch.merged.Len, b.ch.merged.Cap)
	b.pool.Instrument(r, b.traced)
	for i, d := range b.devs {
		d.Instrument(r, fmt.Sprintf("fpga%d", i))
	}
}

// Snapshot returns the unified telemetry view of the backend: every
// counter, queue depth, gauge, decoder stage stat and event — plus
// per-stage latency histograms and recent batch spans when the Booster
// was built with Config.Metrics set.
func (b *Booster) Snapshot() *metrics.PipelineSnapshot { return b.reg.Snapshot() }

// Registry exposes the Booster's metrics registry, so callers can hang
// additional instruments (dispatcher queues, engine latencies) off the
// same snapshot.
func (b *Booster) Registry() *metrics.Registry { return b.reg }

// Batches returns the Full_Batch_Queue the Dispatcher drains.
func (b *Booster) Batches() *queue.Queue[*Batch] { return b.full }

// Pool exposes the MemManager, for tests and the Table 1 surface.
func (b *Booster) Pool() *hugepage.Pool { return b.pool }

// Device exposes the first FPGA decoder, for stats.
func (b *Booster) Device() *fpga.Device { return b.devs[0] }

// Devices exposes every FPGA decoder board.
func (b *Booster) Devices() []*fpga.Device { return b.devs }

// Channel exposes the FPGAChannel bound to the decoder (Table 1).
func (b *Booster) Channel() *FPGAChannel { return b.ch }

// Images returns the count of successfully decoded images.
func (b *Booster) Images() int64 { return b.images.Value() }

// DecodeErrors returns the count of failed decodes.
func (b *Booster) DecodeErrors() int64 { return b.errors.Value() }

// Retries returns the count of decode-command resubmissions.
func (b *Booster) Retries() int64 { return b.retries.Value() }

// CmdTimeouts returns the count of commands settled by timeout (FINISH
// never arrived, or the board FIFO never accepted the submit).
func (b *Booster) CmdTimeouts() int64 { return b.timeouts.Value() }

// FallbackDecodes returns the count of images decoded on the CPU
// fallback path instead of the FPGA.
func (b *Booster) FallbackDecodes() int64 { return b.fallbacks.Value() }

// LateFinishes returns the count of commands whose FINISH beat the
// timeout sweep's revocation attempt: the command looked expired but
// had already completed, so it was kept pending and settled normally.
func (b *Booster) LateFinishes() int64 { return b.lateFinishes.Value() }

// PartialFlushes returns the count of batches sealed by the
// BatchTimeout deadline before filling — the dynamic-batching flushes
// that keep online-serving latency bounded.
func (b *Booster) PartialFlushes() int64 { return b.partialFlush.Value() }

// Degraded reports whether the booster has switched decode work to the
// CPU fallback path.
func (b *Booster) Degraded() bool { return b.degraded.Load() }

// Events exposes the failure-event log (degraded-mode switches).
func (b *Booster) Events() []metrics.Event { return b.reg.Events() }

// noteFPGAFailure tracks a final (unretried or unretriable) FPGA
// failure and engages degraded mode at the configured threshold.
func (b *Booster) noteFPGAFailure() {
	n := b.consecFails.Add(1)
	fa := b.cfg.Resilience.FallbackAfter
	if fa > 0 && n >= int64(fa) && b.degraded.CompareAndSwap(false, true) {
		b.reg.Event("degraded",
			fmt.Sprintf("FPGA→CPU fallback engaged after %d consecutive decoder failures", n))
	}
}

// noteFPGASuccess resets the consecutive-failure streak.
func (b *Booster) noteFPGASuccess() { b.consecFails.Store(0) }

// backoffDur returns the pause before retry `attempt` (1-based),
// doubling from the configured base. The reader never sleeps it
// inline — a retry is scheduled by deadline (pendingSlot.retryAt) and
// resubmitted from the event-loop sweep, so one command backing off
// does not head-of-line block completion draining for every other.
func (b *Booster) backoffDur(attempt int) time.Duration {
	d := b.cfg.Resilience.RetryBackoff
	if d <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 10 {
		shift = 10 // cap: backoff is damage control, not a parking lot
	}
	return d << shift
}

// cpuDecode is the degraded-mode decode path: the same mirror stages
// the FPGA would run (parse → entropy decode → reconstruct → resize)
// executed on the host CPU, writing into the same HugePage batch slot,
// so the downstream Dispatcher and engines see identical batches.
func (b *Booster) cpuDecode(ref fpga.DataRef, dst []byte) error {
	data := ref.Inline
	if data == nil {
		if b.cfg.Source == nil {
			return fpga.ErrNoData
		}
		var err error
		data, err = b.cfg.Source.Fetch(ref)
		if err != nil {
			return err
		}
	}
	job, err := b.mirror.Parse(data)
	if err != nil {
		return err
	}
	job, err = b.mirror.EntropyDecode(job)
	if err != nil {
		return err
	}
	var img *pix.Image
	if sm, ok := b.mirror.(fpga.ScaledMirror); ok && !b.cfg.DisableScaledDecode {
		var scale int
		img, scale, err = sm.ReconstructScaled(job, b.cfg.OutW, b.cfg.OutH)
		if err == nil && scale < 8 {
			b.scaledCPU.Add(1)
		}
	} else {
		img, err = b.mirror.Reconstruct(job)
	}
	if err != nil {
		return err
	}
	if img.C != b.cfg.Channels {
		return fmt.Errorf("core: decoded %d channels, want %d", img.C, b.cfg.Channels)
	}
	out, err := pix.FromBytes(b.cfg.OutW, b.cfg.OutH, b.cfg.Channels, dst)
	if err != nil {
		return err
	}
	return imageproc.ResizeInto(img, out, imageproc.Bilinear)
}

// RecycleBatch returns a consumed batch's buffer to the pool (Table 1
// recycle_item). The Dispatcher calls it after stream synchronisation.
// A traced batch's span terminates here: the recycle timestamp is
// stamped and the completed span handed to the registry exactly once.
func (b *Booster) RecycleBatch(batch *Batch) error {
	if batch == nil || batch.Buf == nil {
		return errors.New("core: nil batch")
	}
	if tr := batch.Trace; tr != nil {
		batch.Trace = nil
		tr.Recycled = time.Now()
		b.reg.CompleteSpan(*tr)
	}
	return b.pool.Put(batch.Buf)
}

// CloseBatches marks the end of the batch stream, letting consumers
// drain and exit.
func (b *Booster) CloseBatches() { b.full.Close() }

// Close tears the backend down.
func (b *Booster) Close() {
	b.closeOnce.Do(func() {
		b.ch.close()
		b.full.Close()
		b.pool.Close()
	})
}

// building tracks one batch buffer being filled by in-flight decodes.
type building struct {
	batch       *Batch
	outstanding int
	sealed      bool
}

// pendingSlot maps an in-flight command to its batch slot, carrying
// what the failure policy needs: the command itself for resubmission,
// the attempt count, the submit time for timeout detection, and — when
// the command is held host-side between a failed attempt and its
// retry — the earliest time the resubmission may go out.
type pendingSlot struct {
	bld       *building
	slot      int
	cmd       fpga.Cmd
	attempts  int
	submitted time.Time
	retryAt   time.Time // zero = in the board; set = awaiting scheduled retry
}

// RunEpoch drives one pass of the collector through the FPGA decoder —
// Algorithm 1 of the paper. It returns once every input item has been
// decoded (or failed) and every completed batch is on the Full queue. A
// consumer must drain Batches() concurrently, or the pool back-pressure
// will pause the reader once all buffers are in flight.
//
// When the cache is enabled, processed batches are also retained in
// memory (until the limit), making later epochs servable by ReplayCache.
func (b *Booster) RunEpoch(col DataCollector) error {
	if col == nil {
		return errors.New("core: nil collector")
	}
	imageBytes := b.cfg.OutW * b.cfg.OutH * b.cfg.Channels
	res := b.cfg.Resilience
	pending := make(map[uint64]pendingSlot)
	var cur *building
	stream, _ := col.(StreamingCollector)
	// Dynamic batching: flushAt is the deadline by which the building
	// batch must seal even if short — armed when its first item lands,
	// disarmed at every seal. Only meaningful with BatchTimeout set and
	// a streaming collector.
	bt := b.cfg.BatchTimeout
	var flushAt time.Time

	// live tracks every buffer this epoch has taken from the pool but
	// not yet published. On an abnormal exit (pool or decoder closed
	// mid-epoch) those buffers are returned so the get/recycle ledger
	// stays balanced — the accounting invariant the chaos tests assert.
	live := make(map[*building]bool)
	defer func() {
		for bld := range live {
			_ = b.pool.Put(bld.batch.Buf) // Push may fail post-Close; the checkout is cleared regardless
		}
	}()

	// finishIfDone publishes a batch once it is sealed with no decodes
	// in flight. outstanding is exact — each submitted command is
	// settled exactly once (FINISH, retry exhaustion, or timeout) — so
	// the condition fires exactly once per batch.
	finishIfDone := func(bld *building) error {
		if bld.sealed && bld.outstanding == 0 {
			if err := b.finishBatch(bld.batch); err != nil {
				// Publish failed (queue closed mid-teardown): the buffer
				// stays in live so the epoch cleanup recycles it.
				return err
			}
			delete(live, bld)
		}
		return nil
	}

	// seal stops the building batch accepting items and publishes it as
	// soon as its in-flight decodes settle. partial marks a
	// deadline-flushed short batch (dynamic batching) as opposed to a
	// full batch or the end-of-stream flush.
	seal := func(partial bool) error {
		cur.sealed = true
		if partial {
			b.partialFlush.Add(1)
		}
		if tr := cur.batch.Trace; tr != nil {
			tr.Sealed = time.Now()
		}
		err := finishIfDone(cur)
		cur = nil
		flushAt = time.Time{}
		return err
	}

	// settleFPGASuccess and settleFailure are the only two ways a
	// pending command resolves; both decrement outstanding.
	settleSuccess := func(ps pendingSlot) error {
		b.noteFPGASuccess()
		b.images.Add(1)
		if b.traced {
			b.reg.ObserveSince(metrics.StageFPGADecode, ps.submitted)
		}
		if tr := ps.bld.batch.Trace; tr != nil {
			tr.FPGA++
		}
		ps.bld.batch.Valid[ps.slot] = true
		ps.bld.outstanding--
		return finishIfDone(ps.bld)
	}
	// settleFailure resolves a command whose FPGA decode finally failed
	// (retries exhausted, submission shed, or timed out). With fallback
	// configured the item is rescued by the CPU decode path — the
	// degradation of the failure model — otherwise its slot stays
	// invalid, the paper's original behaviour.
	settleFailure := func(ps pendingSlot) error {
		b.noteFPGAFailure()
		off := ps.slot * imageBytes
		dst := ps.bld.batch.Buf.Bytes()[off : off+imageBytes]
		var t0 time.Time
		if b.traced {
			t0 = time.Now()
		}
		if res.FallbackAfter > 0 && b.cpuDecode(ps.cmd.Data, dst) == nil {
			b.images.Add(1)
			b.fallbacks.Add(1)
			if b.traced {
				b.reg.ObserveSince(metrics.StageCPUFallback, t0)
			}
			if tr := ps.bld.batch.Trace; tr != nil {
				tr.Fallback++
			}
			ps.bld.batch.Valid[ps.slot] = true
		} else {
			b.errors.Add(1)
			if tr := ps.bld.batch.Trace; tr != nil {
				tr.Failed++
			}
			ps.bld.batch.Valid[ps.slot] = false
		}
		ps.bld.outstanding--
		return finishIfDone(ps.bld)
	}

	process := func(comps []fpga.Completion) error {
		for _, c := range comps {
			ps, ok := pending[c.ID]
			if !ok {
				return fmt.Errorf("core: completion for unknown cmd %d", c.ID)
			}
			if c.Err == nil {
				delete(pending, c.ID)
				if err := settleSuccess(ps); err != nil {
					return err
				}
				continue
			}
			if ps.attempts < res.MaxRetries && !b.degraded.Load() {
				// Schedule the retry by deadline instead of sleeping the
				// backoff inline: the reader keeps draining completions
				// and expiring timeouts for every other command while
				// this one waits its turn.
				ps.attempts++
				b.retries.Add(1)
				ps.retryAt = time.Now().Add(b.backoffDur(ps.attempts))
				pending[c.ID] = ps
				continue
			}
			delete(pending, c.ID)
			if err := settleFailure(ps); err != nil {
				return err
			}
		}
		return nil
	}

	// resubmitDue sends every host-held retry whose backoff has elapsed
	// back to the boards; a shed resubmission (full FIFO of a wedged
	// board) or a degraded-mode switch settles the command instead.
	resubmitDue := func() error {
		if len(pending) == 0 {
			return nil
		}
		now := time.Now()
		for id, ps := range pending {
			if ps.retryAt.IsZero() || now.Before(ps.retryAt) {
				continue
			}
			if b.degraded.Load() {
				delete(pending, id)
				if err := settleFailure(ps); err != nil {
					return err
				}
				continue
			}
			ok, err := b.resubmit(ps.cmd)
			if err != nil {
				return err
			}
			if !ok {
				delete(pending, id)
				b.timeouts.Add(1)
				if err := settleFailure(ps); err != nil {
					return err
				}
				continue
			}
			ps.retryAt = time.Time{}
			ps.submitted = now
			pending[id] = ps
		}
		return nil
	}

	// nextRetry returns the wait until the earliest scheduled retry.
	nextRetry := func() (time.Duration, bool) {
		var earliest time.Time
		for _, ps := range pending {
			if ps.retryAt.IsZero() {
				continue
			}
			if earliest.IsZero() || ps.retryAt.Before(earliest) {
				earliest = ps.retryAt
			}
		}
		if earliest.IsZero() {
			return 0, false
		}
		d := time.Until(earliest)
		if d < 0 {
			d = 0
		}
		return d, true
	}

	// expire settles every in-board command whose FINISH is overdue —
	// the only way a wedged board's swallowed commands ever resolve.
	// Before a slot is settled (and its buffer thereby becomes eligible
	// for publishing and recycling) the command is revoked on its board:
	// Cancel returns only once no DMA write for it can ever land, so a
	// merely-slow board cannot scribble over a rescued slot or a reused
	// buffer later. When the revocation loses the race the FINISH is
	// already in the completion stream — the command is not lost, just
	// slow — so it stays pending with a fresh clock and settles normally.
	expire := func() error {
		if res.CmdTimeout <= 0 || len(pending) == 0 {
			return nil
		}
		now := time.Now()
		for id, ps := range pending {
			if !ps.retryAt.IsZero() {
				continue // host-held awaiting retry: nothing in the board
			}
			if now.Sub(ps.submitted) < res.CmdTimeout {
				continue
			}
			if !b.ch.Cancel(id) {
				b.lateFinishes.Add(1)
				ps.submitted = now
				pending[id] = ps
				continue
			}
			delete(pending, id)
			b.timeouts.Add(1)
			b.flight.Note("cmd_revoked",
				fmt.Sprintf("cmd %d revoked after %v without FINISH", id, res.CmdTimeout))
			if err := settleFailure(ps); err != nil {
				return err
			}
		}
		return nil
	}

	// awaitOne blocks for the next FINISH from any board. The wait is
	// bounded by a fraction of the command timeout (so a stuck board
	// cannot park the reader past its own detection threshold) and by
	// the earliest scheduled retry (so a backing-off command is
	// resubmitted on time even when no FINISH ever arrives).
	awaitOne := func() error {
		if err := resubmitDue(); err != nil {
			return err
		}
		if len(pending) == 0 {
			return nil
		}
		wait := time.Duration(-1)
		if res.CmdTimeout > 0 {
			wait = res.CmdTimeout / 4
		}
		if d, ok := nextRetry(); ok && (wait < 0 || d < wait) {
			wait = d
		}
		if wait < 0 {
			comp, err := b.ch.WaitCompletion()
			if err != nil {
				return fmt.Errorf("core: decoder closed mid-epoch: %w", err)
			}
			return process(append([]fpga.Completion{comp}, b.ch.DrainOut()...))
		}
		comp, ok, err := b.ch.WaitCompletionTimeout(wait)
		if err != nil {
			return fmt.Errorf("core: decoder closed mid-epoch: %w", err)
		}
		if ok {
			if err := process(append([]fpga.Completion{comp}, b.ch.DrainOut()...)); err != nil {
				return err
			}
		}
		if err := expire(); err != nil {
			return err
		}
		return resubmitDue()
	}

	// poll is the non-blocking sweep between submissions: drain FINISH
	// signals, expire overdue commands, send due retries.
	poll := func() error {
		if err := process(b.ch.DrainOut()); err != nil {
			return err
		}
		if err := expire(); err != nil {
			return err
		}
		return resubmitDue()
	}

	for {
		var item Item
		var ok bool
		if stream == nil {
			item, ok = col.Next()
		} else {
			// Streaming input can pause indefinitely; keep draining
			// FINISH signals while waiting so in-flight batches publish
			// promptly (the FPGA-handler daemon's job in §3.2 — the
			// paper's closed-loop workload never pauses, but an online
			// server's arrivals do).
			for {
				if cur != nil && bt > 0 && !time.Now().Before(flushAt) {
					// Deadline flush: the oldest item of the building
					// batch has waited out BatchTimeout. Seal and
					// dispatch the partial batch instead of stalling
					// until arrivals fill it — the bounded-latency
					// contract of the online workflow (Figure 8).
					if err := seal(true); err != nil {
						return err
					}
				}
				if len(pending) == 0 && (cur == nil || bt <= 0) {
					item, ok = col.Next()
					break
				}
				wait := 200 * time.Microsecond
				if cur != nil && bt > 0 {
					if d := time.Until(flushAt); d < wait {
						wait = d
					}
					if wait <= 0 {
						continue // flush deadline already due
					}
				}
				var alive bool
				item, ok, alive = stream.NextTimeout(wait)
				if ok || !alive {
					break
				}
				if err := poll(); err != nil {
					return err
				}
			}
		}
		if !ok {
			break
		}
		b.collected.Add(1)
		var collectedAt time.Time
		if b.spanned {
			collectedAt = time.Now()
		}
		if cur == nil {
			// Algorithm 1 lines 5–10: peek the free queue; while no
			// buffer is available and decodes are still in flight,
			// process completions (blocking on the FINISH queue rather
			// than the pool — a buffer can only come back through a
			// finished batch or through the consumer, and blocking on
			// the pool alone would deadlock when every buffer belongs
			// to a batch whose completions nobody is draining).
			for !b.pool.Available() && len(pending) > 0 {
				if err := awaitOne(); err != nil {
					return err
				}
			}
			buf, err := b.pool.Get()
			if err != nil {
				return fmt.Errorf("core: memory pool closed: %w", err)
			}
			cur = b.newBuilding(buf)
			if tr := cur.batch.Trace; tr != nil {
				tr.Collected = collectedAt
				tr.BufAcquired = time.Now()
			}
			live[cur] = true
			if bt > 0 {
				// The first item of a batch arms its flush deadline.
				flushAt = time.Now().Add(bt)
			}
		}
		slot := cur.batch.Images
		cur.batch.Images++
		cur.batch.Metas = append(cur.batch.Metas, item.Meta)
		cur.batch.Valid = append(cur.batch.Valid, false)
		b.cmdID++
		// Algorithm 1 lines 11–12: encapsulate the physical address
		// (base + offset of this datum in the batch) into the cmd.
		cmd := fpga.Cmd{
			ID:       b.cmdID,
			Data:     item.Ref,
			DMAAddr:  cur.batch.Buf.PhysAddr(),
			DMAOff:   slot * imageBytes,
			OutW:     b.cfg.OutW,
			OutH:     b.cfg.OutH,
			Channels: b.cfg.Channels,
		}
		if b.degraded.Load() {
			// Degraded mode: decode rerouted to the CPU backend path,
			// bypassing the decoder entirely.
			dst := cur.batch.Buf.Bytes()[cmd.DMAOff : cmd.DMAOff+imageBytes]
			var t0 time.Time
			if b.traced {
				t0 = time.Now()
			}
			if b.cpuDecode(item.Ref, dst) == nil {
				b.images.Add(1)
				b.fallbacks.Add(1)
				if b.traced {
					b.reg.ObserveSince(metrics.StageCPUFallback, t0)
				}
				if tr := cur.batch.Trace; tr != nil {
					tr.Fallback++
				}
				cur.batch.Valid[slot] = true
			} else {
				b.errors.Add(1)
				if tr := cur.batch.Trace; tr != nil {
					tr.Failed++
				}
			}
		} else {
			submitted := true
			var err error
			if res.CmdTimeout > 0 {
				submitted, err = b.ch.SubmitCmdTimeout(cmd, res.CmdTimeout)
			} else {
				err = b.ch.SubmitCmd(cmd)
			}
			if err != nil {
				return err
			}
			cur.outstanding++
			ps := pendingSlot{bld: cur, slot: slot, cmd: cmd, submitted: time.Now()}
			if submitted {
				pending[cmd.ID] = ps
			} else {
				// The FIFO never accepted the command — a wedged board.
				// Settle host-side without waiting for a FINISH that
				// cannot come.
				b.timeouts.Add(1)
				if err := settleFailure(ps); err != nil {
					return err
				}
			}
		}
		// Lines 13–15: pull processed batches with best effort.
		if err := poll(); err != nil {
			return err
		}
		if cur.batch.Images == b.cfg.BatchSize {
			// A full batch seals here; with every slot already settled
			// (pure degraded mode) no FINISH will arrive to publish the
			// batch, so finishIfDone inside seal does it.
			if err := seal(false); err != nil {
				return err
			}
		}
	}
	// Flush: seal the partial batch and wait out all in-flight decodes.
	if cur != nil {
		if err := seal(false); err != nil {
			return err
		}
	}
	for len(pending) > 0 {
		if err := awaitOne(); err != nil {
			return err
		}
	}
	return nil
}

// resubmit re-queues a retried command. Under a command timeout the
// push is bounded, so the full FIFO of a wedged board sheds the retry
// (ok=false) instead of deadlocking the reader.
func (b *Booster) resubmit(cmd fpga.Cmd) (bool, error) {
	if t := b.cfg.Resilience.CmdTimeout; t > 0 {
		return b.ch.SubmitCmdTimeout(cmd, t)
	}
	return true, b.ch.SubmitCmd(cmd)
}

func (b *Booster) newBuilding(buf *hugepage.Buffer) *building {
	b.seq++
	batch := &Batch{
		Buf: buf,
		W:   b.cfg.OutW, H: b.cfg.OutH, C: b.cfg.Channels,
		Seq: b.seq,
	}
	if b.spanned {
		batch.Trace = &metrics.Span{Batch: b.seq}
	}
	return &building{batch: batch}
}

// finishBatch timestamps, optionally caches, and publishes a batch.
func (b *Booster) finishBatch(batch *Batch) error {
	if batch.Images == 0 {
		// An empty sealed batch (stream ended exactly at a boundary):
		// return the buffer instead of publishing nothing.
		return b.pool.Put(batch.Buf)
	}
	batch.AssembledAt = time.Now()
	if tr := batch.Trace; tr != nil {
		tr.Published = batch.AssembledAt
		tr.Images = batch.Images
	}
	if b.traced {
		// Fill ratio (0..1], not milliseconds: 1.0 is a full batch, a
		// low tail means deadline flushes are trading throughput for
		// latency (see docs/METRICS.md).
		b.reg.Observe(metrics.StageBatchFill, float64(batch.Images)/float64(b.cfg.BatchSize))
	}
	if b.cfg.CacheLimitBytes > 0 {
		b.cacheBatch(batch)
	}
	if err := b.full.Push(batch); err != nil {
		return err
	}
	b.published.Add(1)
	return nil
}

func (b *Booster) cacheBatch(batch *Batch) {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	if b.cacheOverflow {
		return
	}
	n := int64(batch.Images * batch.ImageBytes())
	if b.cacheBytes+n > b.cfg.CacheLimitBytes {
		// The dataset does not fit: drop the cache entirely, as keeping
		// a partial epoch would serve skewed data (ILSVRC case).
		b.cacheOverflow = true
		b.cache = nil
		b.cacheBytes = 0
		return
	}
	cb := cachedBatch{
		data:   append([]byte(nil), batch.Bytes()...),
		metas:  append([]ItemMeta(nil), batch.Metas...),
		valid:  append([]bool(nil), batch.Valid...),
		images: batch.Images,
	}
	b.cache = append(b.cache, cb)
	b.cacheBytes += n
}

// CacheComplete reports whether a full epoch is cached and replayable.
func (b *Booster) CacheComplete() bool {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	return b.cfg.CacheLimitBytes > 0 && !b.cacheOverflow && len(b.cache) > 0
}

// CachedBatches returns the number of cached batches.
func (b *Booster) CachedBatches() int {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	return len(b.cache)
}

// ErrCacheUnavailable is returned by ReplayCache when no complete epoch
// is cached (caching disabled, first epoch not run, or dataset too big).
var ErrCacheUnavailable = errors.New("core: epoch cache unavailable")

// ReplayCache serves one epoch from the in-memory cache: the offline-like
// fast path of the hybrid service (§3.1). Batches still flow through
// pool buffers and the Full queue so the downstream pipeline is
// identical.
//
// Replayed batches share the cached Metas and Valid slices rather than
// copying them per epoch: cache entries are immutable once written, and
// every downstream consumer (Dispatcher, engines) treats a published
// batch's Metas/Valid as read-only, so the aliasing is safe and saves
// two allocations per batch per replayed epoch.
func (b *Booster) ReplayCache() error {
	b.cacheMu.Lock()
	snapshot := b.cache
	ok := b.cfg.CacheLimitBytes > 0 && !b.cacheOverflow && len(b.cache) > 0
	b.cacheMu.Unlock()
	if !ok {
		return ErrCacheUnavailable
	}
	for _, cb := range snapshot {
		buf, err := b.pool.Get()
		if err != nil {
			return fmt.Errorf("core: memory pool closed: %w", err)
		}
		copy(buf.Bytes(), cb.data)
		b.seq++
		batch := &Batch{
			Buf:    buf,
			Images: cb.images,
			W:      b.cfg.OutW, H: b.cfg.OutH, C: b.cfg.Channels,
			Metas:       cb.metas,
			Valid:       cb.valid,
			Seq:         b.seq,
			AssembledAt: time.Now(),
		}
		b.images.Add(int64(cb.images))
		b.cacheReplayImages.Add(int64(cb.images))
		b.cacheReplayBytes.Add(int64(len(cb.data)))
		if err := b.full.Push(batch); err != nil {
			return err
		}
		b.published.Add(1)
	}
	return nil
}

// FPGAChannel binds the host bridger to its FPGA decoders — the
// FPGAChannel abstraction of §3.4.1, exposing the submit_cmd/drain_out
// API of Table 1. With more than one board, commands round-robin across
// devices and their FINISH signals merge into one completion stream, so
// the FPGAReader is indifferent to how many boards are plugged in.
type FPGAChannel struct {
	devs   []*fpga.Device
	merged *queue.Queue[fpga.Completion]
	fwd    sync.WaitGroup

	mu sync.Mutex
	rr int
}

func newFPGAChannel(devs []*fpga.Device) *FPGAChannel {
	c := &FPGAChannel{
		devs:   devs,
		merged: queue.New[fpga.Completion](256 * len(devs)),
	}
	// One forwarder per board moves FINISH signals into the merged
	// stream; when every board closes, the stream closes.
	for _, d := range devs {
		c.fwd.Add(1)
		go func(d *fpga.Device) {
			defer c.fwd.Done()
			for {
				comp, err := d.WaitCompletion()
				if err != nil {
					return
				}
				if err := c.merged.Push(comp); err != nil {
					return
				}
			}
		}(d)
	}
	go func() {
		c.fwd.Wait()
		c.merged.Close()
	}()
	return c
}

// SubmitCmd submits a decode command to the next board round-robin and
// launches the decoding operation (Table 1: submit_cmd).
func (c *FPGAChannel) SubmitCmd(cmd fpga.Cmd) error {
	c.mu.Lock()
	d := c.devs[c.rr%len(c.devs)]
	c.rr++
	c.mu.Unlock()
	return d.Submit(cmd)
}

// SubmitCmdTimeout submits to the next board round-robin, bounded by t:
// ok is false when the board's FIFO stayed full for the whole window —
// the signature of a wedged board — letting the caller shed the command
// instead of blocking the reader forever.
func (c *FPGAChannel) SubmitCmdTimeout(cmd fpga.Cmd, t time.Duration) (bool, error) {
	c.mu.Lock()
	d := c.devs[c.rr%len(c.devs)]
	c.rr++
	c.mu.Unlock()
	return d.SubmitTimeout(cmd, t)
}

// Cancel revokes a timed-out command on whichever board holds it (a
// command lives on at most one board — a retry is only resubmitted
// after the previous attempt's FINISH was consumed). True means the
// revocation won: no DMA write for the command can land after Cancel
// returns and no FINISH for it will ever surface, so its batch slot may
// be rescued and its buffer recycled. False means the command already
// finished and its FINISH must be drained normally.
func (c *FPGAChannel) Cancel(id uint64) bool {
	for _, d := range c.devs {
		if d.Cancel(id) {
			return true
		}
	}
	return false
}

// WaitCompletionTimeout waits up to t for the next FINISH signal; ok is
// false on timeout.
func (c *FPGAChannel) WaitCompletionTimeout(t time.Duration) (fpga.Completion, bool, error) {
	comp, ok, err := c.merged.PopTimeout(t)
	if err != nil {
		return fpga.Completion{}, false, fpga.ErrClosed
	}
	return comp, ok, nil
}

// DrainOut queries the decoders' processing signals asynchronously,
// returning all completions so far (Table 1: drain_out).
func (c *FPGAChannel) DrainOut() []fpga.Completion { return c.merged.Drain() }

// WaitCompletion blocks for the next FINISH signal from any board.
func (c *FPGAChannel) WaitCompletion() (fpga.Completion, error) {
	comp, err := c.merged.Pop()
	if err != nil {
		return fpga.Completion{}, fpga.ErrClosed
	}
	return comp, nil
}

// close shuts every board down and waits for the merged stream to end.
func (c *FPGAChannel) close() {
	for _, d := range c.devs {
		d.Close()
	}
	c.fwd.Wait()
}
