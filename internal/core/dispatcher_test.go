package core

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
)

func newTestSolver(t *testing.T, depth, batchBytes int) *Solver {
	t.Helper()
	dev, err := gpu.NewDevice(0, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Close)
	s, err := NewSolver(dev, depth, batchBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// engineDrain simulates a compute engine: pops device batches, records
// their contents, recycles the device buffers.
func engineDrain(t *testing.T, s *Solver, wg *sync.WaitGroup, out *[][]byte, mu *sync.Mutex) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			db, err := s.Full.Pop()
			if err != nil {
				return
			}
			data := make([]byte, db.Images*db.ImageBytes())
			copy(data, db.Buf.Bytes()[:len(data)])
			mu.Lock()
			*out = append(*out, data)
			mu.Unlock()
			if err := s.Free.Push(db.Buf); err != nil {
				t.Errorf("returning device buffer: %v", err)
				return
			}
		}
	}()
}

func TestDispatcherEndToEnd(t *testing.T) {
	spec := dataset.MNISTLike(24)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Label: spec.Label(i)}}
	}
	b := newBooster(t, Config{BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3})
	batchBytes := 4 * 28 * 28
	s1 := newTestSolver(t, 2, batchBytes)
	s2 := newTestSolver(t, 2, batchBytes)
	d, err := NewDispatcher(b.Batches(), b.RecycleBatch, []*Solver{s1, s2}, DispatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got1, got2 [][]byte
	var wg sync.WaitGroup
	engineDrain(t, s1, &wg, &got1, &mu)
	engineDrain(t, s2, &wg, &got2, &mu)
	dispErr := make(chan error, 1)
	go func() { dispErr <- d.Run() }()
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	if err := <-dispErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// 24 images / batch 4 = 6 batches, round-robin 3 per solver.
	mu.Lock()
	defer mu.Unlock()
	if len(got1) != 3 || len(got2) != 3 {
		t.Fatalf("solver batches = %d/%d, want 3/3 (round robin)", len(got1), len(got2))
	}
	if d.Dispatched() != 6 {
		t.Fatalf("Dispatched = %d", d.Dispatched())
	}
	for _, data := range append(append([][]byte(nil), got1...), got2...) {
		if len(data) != batchBytes {
			t.Fatalf("device batch size %d", len(data))
		}
		if bytes.Count(data, []byte{0}) == len(data) {
			t.Fatal("device batch is all zeros: copy missing")
		}
	}
}

func TestDispatcherPerItemCopyMatchesBatched(t *testing.T) {
	spec := dataset.MNISTLike(8)
	run := func(perItem bool) [][]byte {
		items := make([]Item, spec.Count)
		for i := range items {
			items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}}
		}
		b := newBooster(t, Config{BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2})
		s := newTestSolver(t, 2, 4*28*28)
		d, err := NewDispatcher(b.Batches(), b.RecycleBatch, []*Solver{s}, DispatcherConfig{PerItemCopy: perItem})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got [][]byte
		var wg sync.WaitGroup
		engineDrain(t, s, &wg, &got, &mu)
		done := make(chan error, 1)
		go func() { done <- d.Run() }()
		if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
			t.Fatal(err)
		}
		b.CloseBatches()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		return got
	}
	batched := run(false)
	perItem := run(true)
	if len(batched) != len(perItem) {
		t.Fatalf("batch counts differ: %d vs %d", len(batched), len(perItem))
	}
	// Batches can publish in different orders between runs; compare as
	// multisets.
	canon := func(bs [][]byte) [][]byte {
		out := append([][]byte(nil), bs...)
		sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
		return out
	}
	batched, perItem = canon(batched), canon(perItem)
	for i := range batched {
		if !bytes.Equal(batched[i], perItem[i]) {
			t.Fatalf("batch %d content differs between copy modes", i)
		}
	}
}

func TestDispatcherValidation(t *testing.T) {
	b := newBooster(t, Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2})
	s := newTestSolver(t, 1, 128)
	if _, err := NewDispatcher(nil, b.RecycleBatch, []*Solver{s}, DispatcherConfig{}); err == nil {
		t.Fatal("nil queue accepted")
	}
	if _, err := NewDispatcher(b.Batches(), nil, []*Solver{s}, DispatcherConfig{}); err == nil {
		t.Fatal("nil recycle accepted")
	}
	if _, err := NewDispatcher(b.Batches(), b.RecycleBatch, nil, DispatcherConfig{}); err == nil {
		t.Fatal("no solvers accepted")
	}
	dev, _ := gpu.NewDevice(1, 1<<20)
	if _, err := NewSolver(dev, 0, 128); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := NewSolver(dev, 1, 1<<21); err == nil {
		t.Fatal("oversized device batch accepted")
	}
}

func TestDispatcherClosesSolverQueuesOnExit(t *testing.T) {
	b := newBooster(t, Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2})
	s := newTestSolver(t, 1, 128)
	d, err := NewDispatcher(b.Batches(), b.RecycleBatch, []*Solver{s}, DispatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Run() }()
	b.CloseBatches()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := s.Full.Pop(); err == nil {
		t.Fatal("solver Full queue still open after dispatcher exit")
	}
}

func TestDispatcherSolverFreeQueueClosedMidRun(t *testing.T) {
	spec := dataset.MNISTLike(4)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}}
	}
	b := newBooster(t, Config{BatchSize: 2, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2})
	s := newTestSolver(t, 1, 2*28*28)
	// Take the only device buffer out and close the Free queue: the
	// dispatcher must fail cleanly rather than hang.
	buf, err := s.Free.Pop()
	if err != nil {
		t.Fatal(err)
	}
	_ = buf
	s.Free.Close()
	d, err := NewDispatcher(b.Batches(), b.RecycleBatch, []*Solver{s}, DispatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Run() }()
	go func() {
		_ = b.RunEpoch(CollectorFromItems(items))
		b.CloseBatches()
	}()
	if err := <-done; err == nil {
		t.Fatal("dispatcher ignored closed Free queue")
	}
}

func TestRecycleForeignBatchRejected(t *testing.T) {
	b1 := newBooster(t, Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2})
	b2 := newBooster(t, Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2})
	buf, err := b2.Pool().Get()
	if err != nil {
		t.Fatal(err)
	}
	foreign := &Batch{Buf: buf, Images: 1, W: 8, H: 8, C: 1}
	if err := b1.RecycleBatch(foreign); err == nil {
		t.Fatal("foreign batch recycled")
	}
}
