package core

import (
	"testing"
	"time"

	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/metrics"
)

// TestKnobBatchTimeoutRetune pins the runtime-retunable deadline: the
// collector must read the knob, not the Config value it was built with
// (the stale `bt := b.cfg.BatchTimeout` bug), so a SetBatchTimeout
// issued before a batch arms applies to that batch. The configured
// deadline here is far above the test timeout — only the retuned value
// can flush the partial batch in time.
func TestKnobBatchTimeoutRetune(t *testing.T) {
	spec := dataset.MNISTLike(8)
	b := newBooster(t, Config{
		BatchSize: 8, OutW: 28, OutH: 28, Channels: 1,
		PoolBatches: 4, BatchTimeout: 30 * time.Second,
		Metrics: metrics.NewRegistry(),
	})
	if got := b.BatchTimeout(); got != 30*time.Second {
		t.Fatalf("BatchTimeout seeded to %v, want the Config value 30s", got)
	}
	b.SetBatchTimeout(25 * time.Millisecond)
	if got := b.BatchTimeout(); got != 25*time.Millisecond {
		t.Fatalf("BatchTimeout after retune = %v, want 25ms", got)
	}

	q := newItemQueue(16)
	epochDone := make(chan error, 1)
	go func() { epochDone <- b.RunEpoch(CollectorFromQueue(q)) }()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := q.Push(Item{
			Ref:  fpga.DataRef{Inline: mustJPEG(t, spec, i)},
			Meta: ItemMeta{Seq: i, ReceivedAt: time.Now()},
		}); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	got := make(chan *Batch, 1)
	go func() { batch, _ := b.Batches().Pop(); got <- batch }()
	var batch *Batch
	select {
	case batch = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no batch in 10s — the retuned deadline was ignored (stale cfg.BatchTimeout)")
	}
	if waited := time.Since(start); waited > 8*time.Second {
		t.Fatalf("partial batch took %v — flushed by something other than the retuned deadline", waited)
	}
	if batch.Images != 3 {
		t.Fatalf("batch images = %d, want 3", batch.Images)
	}
	if err := b.RecycleBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := b.PartialFlushes(); got != 1 {
		t.Fatalf("PartialFlushes = %d, want 1", got)
	}
	snap := b.Snapshot()
	if ms := snap.Gauges["knob_batch_timeout_ms"]; ms != 25 {
		t.Fatalf("knob_batch_timeout_ms gauge = %v, want 25", ms)
	}
	q.Close()
	if err := <-epochDone; err != nil {
		t.Fatalf("epoch: %v", err)
	}

	// Clamp: negative retunes floor at 0 (strict batches).
	b.SetBatchTimeout(-time.Second)
	if got := b.BatchTimeout(); got != 0 {
		t.Fatalf("negative retune gave %v, want 0", got)
	}
}

// TestKnobCPUShareOffload drives the fractional FPGA/CPU split: a 0.25
// share over 16 items must CPU-decode exactly every 4th item (error
// diffusion, not bursts), count them as offloads — not failure-path
// fallbacks — and observe them under the cpu_offload stage.
func TestKnobCPUShareOffload(t *testing.T) {
	spec := dataset.MNISTLike(16)
	b := newBooster(t, Config{
		BatchSize: 8, OutW: 28, OutH: 28, Channels: 1,
		PoolBatches: 4, Metrics: metrics.NewRegistry(),
	})
	b.SetCPUShare(0.25)
	if got := b.CPUShare(); got != 0.25 {
		t.Fatalf("CPUShare = %v, want 0.25", got)
	}

	items := make([]Item, 0, 16)
	for i := 0; i < 16; i++ {
		items = append(items, Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Seq: i}})
	}
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatalf("epoch: %v", err)
	}
	b.CloseBatches()
	for _, d := range <-results {
		for i := 0; i < d.images; i++ {
			if !d.valid[i] {
				t.Fatalf("batch %d slot %d invalid — the offloaded decode failed", d.seq, i)
			}
		}
	}

	if got := b.OffloadDecodes(); got != 4 {
		t.Fatalf("OffloadDecodes = %d, want 4 (0.25 share × 16 items)", got)
	}
	if got := b.FallbackDecodes(); got != 0 {
		t.Fatalf("FallbackDecodes = %d, want 0 — offloads must not count as failure fallbacks", got)
	}
	if got := b.Images(); got != 16 {
		t.Fatalf("Images = %d, want 16", got)
	}
	snap := b.Snapshot()
	if got := snap.Counters["offload_decodes_total"]; got != 4 {
		t.Fatalf("offload_decodes_total = %d, want 4", got)
	}
	if got := snap.Gauges["knob_cpu_share"]; got != 0.25 {
		t.Fatalf("knob_cpu_share gauge = %v, want 0.25", got)
	}
	if st := snap.Stages[metrics.StageCPUOffload]; st.Count != 4 {
		t.Fatalf("cpu_offload stage count = %d, want 4", st.Count)
	}

	// Clamp: out-of-range shares saturate at [0, 1].
	b.SetCPUShare(1.5)
	if got := b.CPUShare(); got != 1 {
		t.Fatalf("CPUShare after 1.5 = %v, want 1", got)
	}
	b.SetCPUShare(-0.5)
	if got := b.CPUShare(); got != 0 {
		t.Fatalf("CPUShare after -0.5 = %v, want 0", got)
	}
}
