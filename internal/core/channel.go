// FPGAChannel — the host bridger's binding to its decoder boards
// (§3.4.1, Table 1), split out of booster.go alongside the epoch loop.

package core

import (
	"sync"
	"time"

	"dlbooster/internal/fpga"
	"dlbooster/internal/queue"
)

// FPGAChannel binds the host bridger to its FPGA decoders — the
// FPGAChannel abstraction of §3.4.1, exposing the submit_cmd/drain_out
// API of Table 1. With more than one board, commands round-robin across
// devices and their FINISH signals merge into one completion stream, so
// the FPGAReader is indifferent to how many boards are plugged in.
type FPGAChannel struct {
	devs   []*fpga.Device
	merged *queue.Queue[fpga.Completion]
	fwd    sync.WaitGroup

	mu sync.Mutex
	rr int
}

func newFPGAChannel(devs []*fpga.Device) *FPGAChannel {
	c := &FPGAChannel{
		devs:   devs,
		merged: queue.New[fpga.Completion](256 * len(devs)),
	}
	// One forwarder per board moves FINISH signals into the merged
	// stream; when every board closes, the stream closes.
	for _, d := range devs {
		c.fwd.Add(1)
		go func(d *fpga.Device) {
			defer c.fwd.Done()
			for {
				comp, err := d.WaitCompletion()
				if err != nil {
					return
				}
				if err := c.merged.Push(comp); err != nil {
					return
				}
			}
		}(d)
	}
	go func() {
		c.fwd.Wait()
		c.merged.Close()
	}()
	return c
}

// SubmitCmd submits a decode command to the next board round-robin and
// launches the decoding operation (Table 1: submit_cmd).
func (c *FPGAChannel) SubmitCmd(cmd fpga.Cmd) error {
	c.mu.Lock()
	d := c.devs[c.rr%len(c.devs)]
	c.rr++
	c.mu.Unlock()
	return d.Submit(cmd)
}

// SubmitCmdTimeout submits to the next board round-robin, bounded by t:
// ok is false when the board's FIFO stayed full for the whole window —
// the signature of a wedged board — letting the caller shed the command
// instead of blocking the reader forever.
func (c *FPGAChannel) SubmitCmdTimeout(cmd fpga.Cmd, t time.Duration) (bool, error) {
	c.mu.Lock()
	d := c.devs[c.rr%len(c.devs)]
	c.rr++
	c.mu.Unlock()
	return d.SubmitTimeout(cmd, t)
}

// Cancel revokes a timed-out command on whichever board holds it (a
// command lives on at most one board — a retry is only resubmitted
// after the previous attempt's FINISH was consumed). True means the
// revocation won: no DMA write for the command can land after Cancel
// returns and no FINISH for it will ever surface, so its batch slot may
// be rescued and its buffer recycled. False means the command already
// finished and its FINISH must be drained normally.
func (c *FPGAChannel) Cancel(id uint64) bool {
	for _, d := range c.devs {
		if d.Cancel(id) {
			return true
		}
	}
	return false
}

// WaitCompletionTimeout waits up to t for the next FINISH signal; ok is
// false on timeout.
func (c *FPGAChannel) WaitCompletionTimeout(t time.Duration) (fpga.Completion, bool, error) {
	comp, ok, err := c.merged.PopTimeout(t)
	if err != nil {
		return fpga.Completion{}, false, fpga.ErrClosed
	}
	return comp, ok, nil
}

// DrainOut queries the decoders' processing signals asynchronously,
// returning all completions so far (Table 1: drain_out).
func (c *FPGAChannel) DrainOut() []fpga.Completion { return c.merged.Drain() }

// WaitCompletion blocks for the next FINISH signal from any board.
func (c *FPGAChannel) WaitCompletion() (fpga.Completion, error) {
	comp, err := c.merged.Pop()
	if err != nil {
		return fpga.Completion{}, fpga.ErrClosed
	}
	return comp, nil
}

// close shuts every board down and waits for the merged stream to end.
func (c *FPGAChannel) close() {
	for _, d := range c.devs {
		d.Close()
	}
	c.fwd.Wait()
}
