package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
)

// TestSpillRecordRoundTrip pins the spill record format: every payload
// survives encode/decode byte-exactly (the PSNR-exact guarantee —
// spilling is framing, never re-encoding), compression only engages
// when it shrinks, and a damaged record is rejected, not served.
func TestSpillRecordRoundTrip(t *testing.T) {
	compressible := bytes.Repeat([]byte{7, 7, 7, 9}, 1024)
	rng := rand.New(rand.NewSource(42))
	incompressible := make([]byte, 4096)
	rng.Read(incompressible)

	cases := []struct {
		name     string
		payload  []byte
		compress bool
	}{
		{"raw", compressible, false},
		{"compressed", compressible, true},
		{"incompressible-stays-raw", incompressible, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := encodeSpillRecord(tc.payload, tc.compress)
			if string(rec[:4]) != SpillMagic || rec[4] != SpillFormatVersion {
				t.Fatalf("bad header: % x", rec[:8])
			}
			if tc.compress && bytes.Equal(tc.payload, compressible) && len(rec) >= len(tc.payload)+SpillHeaderSize {
				t.Fatalf("compressible payload did not shrink: %d → %d", len(tc.payload), len(rec))
			}
			got, err := decodeSpillRecord(rec, int64(len(tc.payload)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, tc.payload) {
				t.Fatal("round trip is not byte-exact")
			}
		})
	}

	t.Run("corruption-detected", func(t *testing.T) {
		rec := encodeSpillRecord(compressible, false)
		rec[SpillHeaderSize+100] ^= 0xff
		if _, err := decodeSpillRecord(rec, int64(len(compressible))); err == nil {
			t.Fatal("flipped payload byte passed the checksum")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		rec := encodeSpillRecord(compressible, false)
		rec[0] = 'X'
		if _, err := decodeSpillRecord(rec, int64(len(compressible))); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := decodeSpillRecord([]byte("DLSP"), 0); err == nil {
			t.Fatal("truncated record accepted")
		}
	})
	t.Run("wrong-length", func(t *testing.T) {
		rec := encodeSpillRecord(compressible, false)
		if _, err := decodeSpillRecord(rec, int64(len(compressible))+1); err == nil {
			t.Fatal("length mismatch accepted")
		}
	})
}

// TestCacheSpillReloadParity is the end-to-end byte-parity test: a
// booster whose RAM tier holds only half the epoch must demote the rest
// to the NVMe tier and still replay every image byte-for-byte equal to
// its first-epoch decode, with and without spill compression.
func TestCacheSpillReloadParity(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			spec := dataset.MNISTLike(16)
			items := make([]Item, spec.Count)
			for i := range items {
				items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Label: spec.Label(i), Seq: i}}
			}
			// 4 batches of 4×784 bytes; the RAM tier holds exactly 2.
			b := newBooster(t, Config{
				BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
				Cache: CacheConfig{
					RAMBytes: 2 * 4 * 28 * 28,
					Spill:    nvme.New(nvme.Config{}),
					Compress: compress,
				},
			})
			results := drainAll(t, b)
			if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
				t.Fatal(err)
			}
			st := b.Cache().Stats()
			if st.SpillResident == 0 || st.Demotions == 0 {
				t.Fatalf("nothing spilled: %+v", st)
			}
			if st.Dropped != 0 {
				t.Fatalf("unbounded spill tier evicted %d entries", st.Dropped)
			}
			if !b.CacheComplete() {
				t.Fatal("cache incomplete despite room across the tiers")
			}
			if err := b.ReplayCache(); err != nil {
				t.Fatal(err)
			}
			b.CloseBatches()
			all := <-results
			if len(all) != 8 {
				t.Fatalf("batches = %d, want 4 decoded + 4 replayed", len(all))
			}
			// Pair up epoch-1 and replayed batches by their first seq and
			// compare pixels exactly.
			first := map[int]int{}
			for bi, d := range all[:4] {
				first[d.metas[0].Seq] = bi
			}
			for _, d := range all[4:] {
				bi, ok := first[d.metas[0].Seq]
				if !ok {
					t.Fatalf("replayed batch starting at seq %d has no epoch-1 twin", d.metas[0].Seq)
				}
				o := all[bi]
				if len(d.pixels) != len(o.pixels) {
					t.Fatalf("image count differs: %d vs %d", len(d.pixels), len(o.pixels))
				}
				for s := range d.pixels {
					if !bytes.Equal(d.pixels[s], o.pixels[s]) {
						t.Fatalf("replayed slot %d of batch seq %d is not byte-exact", s, d.metas[0].Seq)
					}
				}
			}
			if hits := b.Cache().Stats(); hits.SpillReadBytes == 0 {
				t.Fatal("replay never read the spill tier")
			}
		})
	}
}

// testCacheBatch crafts a standalone single-image Batch for driving
// TieredCache directly (the pool exists only to mint a real buffer; Add
// copies everything out of it).
type testCacheBatch struct {
	pool *hugepage.Pool
	buf  *hugepage.Buffer
	n    int
}

func newTestCacheBatch(t *testing.T, stride int) *testCacheBatch {
	t.Helper()
	pool, err := hugepage.NewPool(stride, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	buf, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	return &testCacheBatch{pool: pool, buf: buf}
}

func (tb *testCacheBatch) next(fill byte) *Batch {
	tb.n++
	for i := range tb.buf.Bytes() {
		tb.buf.Bytes()[i] = fill
	}
	return &Batch{
		Buf: tb.buf, Images: 1, W: len(tb.buf.Bytes()), H: 1, C: 1,
		Metas: []ItemMeta{{Seq: tb.n}}, Valid: []bool{true},
	}
}

// TestEvictionPolicyDomination is the policy property test: whenever an
// Add evicts entries, every evicted entry's score (cost × hotness) is
// ≤ every survivor's — the cache never drops a hotter-and-costlier
// batch while keeping a colder-and-cheaper one.
func TestEvictionPolicyDomination(t *testing.T) {
	const stride = 256
	tb := newTestCacheBatch(t, stride)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		c, err := NewTieredCache(CacheConfig{
			RAMBytes:   3 * stride,
			Spill:      nvme.New(nvme.Config{}),
			SpillBytes: 3 * (stride + SpillHeaderSize),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			// Bump hits on random live entries first: score must reflect
			// observed hotness, and fetch itself may promote/demote.
			for f := 0; f < rng.Intn(4); f++ {
				live := c.entries[:0:0]
				for _, e := range c.entries {
					if !e.dropped {
						live = append(live, e)
					}
				}
				if len(live) == 0 {
					break
				}
				if _, _, err := c.fetch(live[rng.Intn(len(live))]); err != nil {
					t.Fatal(err)
				}
			}
			before := map[*cacheEntry]bool{}
			for _, e := range c.entries {
				before[e] = e.dropped
			}
			c.Add(tb.next(byte(i)), nil, 1+rng.Float64()*1000)
			for _, d := range c.entries {
				if !d.dropped || before[d] {
					continue
				}
				for _, s := range c.entries {
					if s.dropped {
						continue
					}
					if s.score() < d.score() {
						t.Fatalf("trial %d add %d: evicted seq %d (score %.0f) outranks surviving seq %d (score %.0f)",
							trial, i, d.seq, d.score(), s.seq, s.score())
					}
					if d.cost > s.cost && d.hits > s.hits {
						t.Fatalf("trial %d add %d: evicted seq %d (cost %.0f, hits %d) dominates survivor seq %d (cost %.0f, hits %d)",
							trial, i, d.seq, d.cost, d.hits, s.seq, s.cost, s.hits)
					}
				}
			}
		}
		if st := c.Stats(); st.RAMBytes > 3*stride {
			t.Fatalf("RAM tier over budget: %d", st.RAMBytes)
		}
	}
}

// TestSpillPromotion: a spill-tier entry whose hits outgrow the RAM
// residents' scores is promoted back to RAM, the displaced residents
// demote for free (the promoted entry kept its spill copy), and the
// RAM budget holds throughout.
func TestSpillPromotion(t *testing.T) {
	const stride = 256
	tb := newTestCacheBatch(t, stride)
	c, err := NewTieredCache(CacheConfig{
		RAMBytes: stride, // exactly one resident
		Spill:    nvme.New(nvme.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Add(tb.next(1), nil, 100) // demoted when the next lands
	c.Add(tb.next(2), nil, 200) // resident
	st := c.Stats()
	if st.RAMResident != 1 || st.SpillResident != 1 {
		t.Fatalf("tiers: %+v", st)
	}
	var spilled *cacheEntry
	for _, e := range c.entries {
		if e.spill != "" && e.data == nil {
			spilled = e
		}
	}
	if spilled == nil {
		t.Fatal("no spilled entry")
	}
	// Hammer the spilled entry until its score (100×(1+hits)) passes the
	// resident's 200: the second hit promotes it.
	for i := 0; i < 3; i++ {
		payload, tier, err := c.fetch(spilled)
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) != stride {
			t.Fatalf("payload length %d", len(payload))
		}
		_ = tier
	}
	st = c.Stats()
	if st.Promotions == 0 {
		t.Fatalf("hot spilled entry never promoted: %+v", st)
	}
	if spilled.data == nil {
		t.Fatal("promoted entry has no RAM payload")
	}
	if spilled.spill == "" {
		t.Fatal("promotion discarded the spill copy (demoting it again should be free)")
	}
	if st.RAMBytes > stride {
		t.Fatalf("promotion blew the RAM budget: %d", st.RAMBytes)
	}
}

// TestCacheErrorCauses pins the wrapped-error contract of docs/API.md:
// every unavailability cause wraps ErrCacheUnavailable and is
// distinguishable with errors.Is.
func TestCacheErrorCauses(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		b := newBooster(t, Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2})
		err := b.ReplayCache()
		if !errors.Is(err, ErrCacheDisabled) || !errors.Is(err, ErrCacheUnavailable) {
			t.Fatalf("ReplayCache = %v, want ErrCacheDisabled", err)
		}
	})
	t.Run("never-filled", func(t *testing.T) {
		b := newBooster(t, Config{
			BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2,
			Cache: CacheConfig{RAMBytes: 1 << 20},
		})
		err := b.ReplayCache()
		if !errors.Is(err, ErrCacheNeverFilled) || !errors.Is(err, ErrCacheUnavailable) {
			t.Fatalf("ReplayCache = %v, want ErrCacheNeverFilled", err)
		}
	})
	t.Run("over-ram-limit", func(t *testing.T) {
		const stride = 256
		tb := newTestCacheBatch(t, stride)
		c, err := NewTieredCache(CacheConfig{RAMBytes: stride / 2})
		if err != nil {
			t.Fatal(err)
		}
		c.Add(tb.next(1), nil, 100)
		if err := c.Available(); !errors.Is(err, ErrCacheOverRAMLimit) || !errors.Is(err, ErrCacheUnavailable) {
			t.Fatalf("Available = %v, want ErrCacheOverRAMLimit", err)
		}
	})
	t.Run("evicted", func(t *testing.T) {
		const stride = 256
		tb := newTestCacheBatch(t, stride)
		c, err := NewTieredCache(CacheConfig{
			RAMBytes:   stride / 2, // nothing fits in RAM…
			Spill:      nvme.New(nvme.Config{}),
			SpillBytes: 10, // …or on the spill tier
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Add(tb.next(1), nil, 100)
		if err := c.Available(); !errors.Is(err, ErrCacheEvicted) || !errors.Is(err, ErrCacheUnavailable) {
			t.Fatalf("Available = %v, want ErrCacheEvicted", err)
		}
	})
}

// TestCacheHybridRedecode: when the tiers can't hold the whole epoch,
// replay serves what's cached and re-decodes only the evicted slice —
// every item is still delivered exactly once per epoch.
func TestCacheHybridRedecode(t *testing.T) {
	spec := dataset.MNISTLike(16)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Label: spec.Label(i), Seq: i}}
	}
	// 4 batches: RAM holds 1, spill holds ~2 records, so at least one
	// batch is evicted and must re-decode on replay.
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		Cache: CacheConfig{
			RAMBytes:   4 * 28 * 28,
			Spill:      nvme.New(nvme.Config{}),
			SpillBytes: 2 * (4*28*28 + SpillHeaderSize),
		},
	})
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	st := b.Cache().Stats()
	if st.Dropped == 0 {
		t.Fatalf("expected evictions with tiers this small: %+v", st)
	}
	if b.CacheComplete() {
		t.Fatal("complete despite evictions")
	}
	if !b.CacheReplayable() {
		t.Fatal("hybrid cache should still be replayable")
	}
	if err := b.ReplayCache(); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	all := <-results
	// Epoch 2 must deliver each of the 16 items exactly once, whatever
	// mix of cached and re-decoded batches carried them.
	seen := map[int]int{}
	var epoch2Images int
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			seen[d.metas[s].Seq]++
		}
	}
	for seq, n := range seen {
		if n != 2 {
			t.Fatalf("item %d delivered %d times, want 2 (once per epoch)", seq, n)
		}
		epoch2Images++
	}
	if epoch2Images != 16 {
		t.Fatalf("distinct items = %d", epoch2Images)
	}
	if b.Images() != 32 {
		t.Fatalf("Images = %d, want 32", b.Images())
	}
}

// TestCacheHitRateAtTwiceRAM is the acceptance-criterion test: with the
// decoded dataset twice the RAM tier and an NVMe spill tier behind it,
// epochs 2+ must serve at least 80% of items from the cache tiers.
func TestCacheHitRateAtTwiceRAM(t *testing.T) {
	const n, batch = 32, 4
	spec := dataset.MNISTLike(n)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Label: spec.Label(i), Seq: i}}
	}
	reg := metrics.NewRegistry()
	epochBytes := int64(n * 28 * 28)
	b := newBooster(t, Config{
		BatchSize: batch, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		Metrics: reg,
		Cache: CacheConfig{
			RAMBytes: epochBytes / 2, // dataset is 2× the RAM tier
			Spill:    nvme.New(nvme.Config{}),
			Compress: true,
		},
	})
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	const replays = 2
	for e := 0; e < replays; e++ {
		if err := b.ReplayCache(); err != nil {
			t.Fatal(err)
		}
	}
	b.CloseBatches()
	<-results
	c := reg.Snapshot().Counters
	hits := c["cache_ram_hit_images_total"] + c["cache_spill_hit_images_total"]
	total := int64(n * replays)
	if hits < total*8/10 {
		t.Fatalf("cache served %d of %d replayed images (< 80%%): ram=%d spill=%d redecode=%d",
			hits, total, c["cache_ram_hit_images_total"], c["cache_spill_hit_images_total"], c["cache_redecode_images_total"])
	}
	if c["cache_spill_hit_images_total"] == 0 {
		t.Fatal("spill tier never served a hit at 2× RAM")
	}
}
