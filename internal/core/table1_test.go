package core

import (
	"testing"

	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/nic"
	"dlbooster/internal/nvme"
)

// TestTable1APISurface asserts, name by name, that the public surface of
// the backend provides each API of the paper's Table 1:
//
//	FPGAChannel.submit_cmd   → FPGAChannel.SubmitCmd
//	FPGAChannel.drain_out    → FPGAChannel.DrainOut
//	MemManager.get_item      → hugepage.Pool.Get (via Booster.Pool)
//	MemManager.recycle_item  → hugepage.Pool.Put / Booster.RecycleBatch
//	MemManager.phy2virt      → hugepage.Arena.Phy2Virt
//	MemManager.virt2phy      → hugepage.Arena.Virt2Phy
//	DataCollector.load_from_disk → LoadFromDisk
//	DataCollector.load_from_net  → LoadFromNet
func TestTable1APISurface(t *testing.T) {
	spec := dataset.MNISTLike(3)
	disk := nvme.New(nvme.Config{})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		t.Fatal(err)
	}
	b := newBooster(t, Config{BatchSize: 2, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2, Source: disk})

	// MemManager: get_item / phy2virt / virt2phy / recycle_item.
	pool := b.Pool()
	item, err := pool.Get() // get_item(buffer_size)
	if err != nil {
		t.Fatal(err)
	}
	phys := item.PhysAddr()
	view, err := pool.Arena().Phy2Virt(phys, item.Size()) // phy2virt(physical address)
	if err != nil {
		t.Fatal(err)
	}
	view[0] = 0xAA
	if item.Bytes()[0] != 0xAA {
		t.Fatal("phy2virt view does not alias the buffer")
	}
	back, err := pool.Arena().Virt2Phy(item.Index() * item.Size()) // virt2phy(virtual address)
	if err != nil {
		t.Fatal(err)
	}
	if back != phys {
		t.Fatalf("virt2phy = %#x, want %#x", back, phys)
	}
	if err := pool.Put(item); err != nil { // recycle_item
		t.Fatal(err)
	}

	// FPGAChannel: submit_cmd / drain_out.
	ch := b.Channel()
	buf, _ := pool.Get()
	defer func() { _ = pool.Put(buf) }()
	data := mustJPEG(t, spec, 0)
	if err := ch.SubmitCmd(fpga.Cmd{ // submit_cmd(packeted cmds)
		ID: 1, Data: fpga.DataRef{Inline: data},
		DMAAddr: buf.PhysAddr(), OutW: 28, OutH: 28, Channels: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// drain_out: asynchronous best-effort query, then a bounded wait.
	var comps []fpga.Completion
	for len(comps) == 0 {
		comps = ch.DrainOut()
	}
	if comps[0].ID != 1 || comps[0].Err != nil {
		t.Fatalf("completion = %+v", comps[0])
	}

	// DataCollector: load_from_disk / load_from_net.
	colDisk, err := LoadFromDisk(disk, nil) // load_from_disk
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := colDisk.Next(); !ok {
		t.Fatal("disk collector empty")
	}
	fabric := nic.New(nic.Config{})
	if err := fabric.Deliver(nic.Frame{Payload: data}); err != nil {
		t.Fatal(err)
	}
	colNet, err := LoadFromNet(fabric, 1) // load_from_net
	if err != nil {
		t.Fatal(err)
	}
	it, ok := colNet.Next()
	if !ok || it.Ref.Inline == nil {
		t.Fatal("net collector did not produce the frame")
	}
}
