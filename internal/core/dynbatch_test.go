package core

import (
	"testing"
	"time"

	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/metrics"
)

// TestPartialFlushDeadline drives the deadline-flushed dynamic batching
// of Config.BatchTimeout: a partial batch must publish once its oldest
// item has waited out the deadline — without the stream closing — and
// the deadline must re-arm per batch, while a batch that fills before
// the deadline never counts as a partial flush.
func TestPartialFlushDeadline(t *testing.T) {
	spec := dataset.MNISTLike(16)
	b := newBooster(t, Config{
		BatchSize: 8, OutW: 28, OutH: 28, Channels: 1,
		PoolBatches: 4, BatchTimeout: 25 * time.Millisecond,
		Metrics: metrics.NewRegistry(),
	})
	q := newItemQueue(32)
	epochDone := make(chan error, 1)
	go func() { epochDone <- b.RunEpoch(CollectorFromQueue(q)) }()

	push := func(base, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := q.Push(Item{
				Ref:  fpga.DataRef{Inline: mustJPEG(t, spec, base+i)},
				Meta: ItemMeta{Seq: base + i, ReceivedAt: time.Now()},
			}); err != nil {
				t.Errorf("push: %v", err)
			}
		}
	}
	pop := func() *Batch {
		t.Helper()
		got := make(chan *Batch, 1)
		go func() { batch, _ := b.Batches().Pop(); got <- batch }()
		select {
		case batch := <-got:
			if batch == nil {
				t.Fatal("full queue closed before the batch arrived")
			}
			return batch
		case <-time.After(10 * time.Second):
			t.Fatal("no batch published — the partial-batch stall is back")
		}
		return nil
	}
	recycle := func(batch *Batch) {
		t.Helper()
		if err := b.RecycleBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	// Wave 1: 5 of 8 slots. The queue stays open, so only the deadline
	// can publish this batch.
	start := time.Now()
	push(0, 5)
	batch := pop()
	waited := time.Since(start)
	if batch.Images != 5 {
		t.Fatalf("batch images = %d, want 5", batch.Images)
	}
	for i := 0; i < batch.Images; i++ {
		if !batch.Valid[i] {
			t.Fatalf("slot %d invalid in deadline-flushed batch", i)
		}
	}
	recycle(batch)
	if got := b.PartialFlushes(); got != 1 {
		t.Fatalf("PartialFlushes = %d, want 1", got)
	}
	// Deadline 25ms + real decode; anything near a second means the
	// flush came from somewhere else (e.g. stream close).
	if waited > 5*time.Second {
		t.Fatalf("partial batch took %v to publish", waited)
	}

	// Wave 2: the deadline re-arms for the next partial batch.
	push(5, 3)
	batch = pop()
	if batch.Images != 3 {
		t.Fatalf("second batch images = %d, want 3", batch.Images)
	}
	recycle(batch)
	if got := b.PartialFlushes(); got != 2 {
		t.Fatalf("PartialFlushes = %d, want 2", got)
	}

	// Wave 3: a full batch seals on size, not on the deadline.
	push(8, 8)
	batch = pop()
	if batch.Images != 8 {
		t.Fatalf("full batch images = %d, want 8", batch.Images)
	}
	recycle(batch)
	if got := b.PartialFlushes(); got != 2 {
		t.Fatalf("PartialFlushes = %d after a full batch, want 2", got)
	}

	q.Close()
	if err := <-epochDone; err != nil {
		t.Fatalf("epoch: %v", err)
	}
	if b.Images() != 16 {
		t.Fatalf("Images = %d, want 16", b.Images())
	}
	snap := b.Snapshot()
	if snap.Counters["serve_partial_flushes_total"] != 2 {
		t.Fatalf("serve_partial_flushes_total = %d, want 2", snap.Counters["serve_partial_flushes_total"])
	}
	// Fill-ratio histogram: three batches at 5/8, 3/8 and 8/8 — a mean
	// strictly inside (0, 1) and one observation per published batch.
	fill := snap.Stages[metrics.StageBatchFill]
	if fill.Count != 3 {
		t.Fatalf("batch_fill count = %d, want 3", fill.Count)
	}
	if fill.Mean <= 0.3 || fill.Mean >= 1 {
		t.Fatalf("batch_fill mean = %v, want (5/8+3/8+1)/3 = 2/3", fill.Mean)
	}
}

// TestBatchTimeoutValidation pins the config contract: negative
// deadlines are rejected, zero keeps strict batches.
func TestBatchTimeoutValidation(t *testing.T) {
	_, err := New(Config{BatchSize: 8, OutW: 28, OutH: 28, Channels: 1, BatchTimeout: -time.Millisecond})
	if err == nil {
		t.Fatal("negative batch timeout accepted")
	}
}
