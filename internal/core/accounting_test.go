package core

import (
	"errors"
	"testing"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
	"dlbooster/internal/queue"
)

// Buffer-accounting invariant tests: every get_item is matched by
// exactly one recycle_item (Table 1), under clean shutdown, mid-stream
// Close, and injected-fault runs. Pool.Outstanding is the ledger.

func TestAccountingCleanShutdown(t *testing.T) {
	items := chaosItems(t, 22) // 22 at batch 4 → a partial final batch too
	b := newBooster(t, Config{BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3})
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	<-results
	assertPoolBalanced(t, b)
}

func TestAccountingMidStreamClose(t *testing.T) {
	// A streaming epoch is torn down while items are still arriving: the
	// reader must return (not hang), and after the consumer recycles
	// what was published, no buffer may remain checked out — including
	// the half-built batch the reader was filling, which its epoch
	// cleanup returns.
	spec := chaosItems(t, 1)[0] // one decodable payload to replicate
	b := newBooster(t, Config{BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3})
	itemq := queue.New[Item](64)
	epochDone := make(chan error, 1)
	go func() { epochDone <- b.RunEpoch(CollectorFromQueue(itemq)) }()

	// Feed one full batch plus a partial one, consume the full batch.
	for i := 0; i < 6; i++ {
		if err := itemq.Push(Item{Ref: spec.Ref, Meta: ItemMeta{Seq: i}}); err != nil {
			t.Fatal(err)
		}
	}
	batch, ok, err := b.Batches().PopTimeout(10 * time.Second)
	if err != nil || !ok {
		t.Fatalf("first batch never published: ok=%v err=%v", ok, err)
	}
	if err := b.RecycleBatch(batch); err != nil {
		t.Fatal(err)
	}

	// Tear down mid-stream: 2 items are sitting in an unsealed batch.
	b.Close()
	itemq.Close()
	select {
	case <-epochDone: // error or nil — either way it must return
	case <-time.After(10 * time.Second):
		t.Fatal("RunEpoch hung through mid-stream Close")
	}
	// Drain anything still published, ignoring recycle errors (the pool
	// is closed; the checkout ledger is still maintained).
	for {
		bt, err := b.Batches().Pop()
		if err != nil {
			break
		}
		_ = b.RecycleBatch(bt)
	}
	if n := b.Pool().Outstanding(); n != 0 {
		t.Fatalf("%d buffers still checked out after mid-stream Close", n)
	}
}

func TestAccountingInjectedFaultRun(t *testing.T) {
	// Mixed fault load — failures, retries, fallback rescues, and real
	// decode errors from corruption — must keep the ledger exact and
	// settle every item exactly once.
	const n = 30
	items := chaosItems(t, n)
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA: fpga.Config{Inject: faults.New(faults.Config{
			Seed: 5, FailEvery: 4, CorruptEvery: 7, Delay: 200 * time.Microsecond, DelayEvery: 5,
		})},
		Resilience: Resilience{
			MaxRetries:    1,
			RetryBackoff:  10 * time.Microsecond,
			FallbackAfter: 6,
		},
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	all := <-results
	settled := 0
	for _, d := range all {
		settled += d.images
	}
	if settled != n {
		t.Fatalf("settled %d items, want %d", settled, n)
	}
	if got := b.Images() + b.DecodeErrors(); got != n {
		t.Fatalf("images+errors = %d, want %d", got, n)
	}
	assertPoolBalanced(t, b)
}

func TestResilienceValidation(t *testing.T) {
	base := Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2}
	bad := []Resilience{
		{MaxRetries: -1},
		{FallbackAfter: -1},
		{RetryBackoff: -time.Millisecond},
		{CmdTimeout: -time.Millisecond},
	}
	for i, r := range bad {
		cfg := base
		cfg.Resilience = r
		if _, err := New(cfg); err == nil {
			t.Errorf("resilience %d accepted: %+v", i, r)
		}
	}
	cfg := base
	cfg.Resilience = Resilience{MaxRetries: 2}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.cfg.Resilience.RetryBackoff <= 0 {
		t.Fatal("retry backoff not defaulted")
	}
	if errors.Is(err, nil) && b.Degraded() {
		t.Fatal("fresh booster reports degraded")
	}
}
