package core

import (
	"errors"
	"time"

	"dlbooster/internal/fpga"
	"dlbooster/internal/nic"
	"dlbooster/internal/nvme"
	"dlbooster/internal/queue"
)

// Item is one unit of raw input: where its bytes live (a DataRef the
// FPGA DataReader understands) plus metadata.
type Item struct {
	Ref  fpga.DataRef
	Meta ItemMeta
}

// DataCollector is the data abstraction of §3.4.1: it "translates the
// metadata (block information) that describes the storage information of
// the data on the disk or generates the metadata ... that describes
// where the data are placed by NICs". Next returns false when the stream
// ends; implementations must be safe for a single consumer.
type DataCollector interface {
	Next() (Item, bool)
}

// StreamingCollector is implemented by collectors whose input can pause
// indefinitely (network feeds, item queues). NextTimeout waits up to d:
// ok reports an item, alive=false reports end of stream. The FPGAReader
// uses it to keep draining decoder completions while arrivals stall —
// otherwise a sealed batch whose FINISH signals land after the last
// arrival would sit unpublished until the next request (the paper's
// closed-loop evaluation never pauses, but an online server does).
type StreamingCollector interface {
	DataCollector
	NextTimeout(d time.Duration) (item Item, ok bool, alive bool)
}

// diskCollector walks an NVMe manifest once, in order (Table 1
// load_from_disk).
type diskCollector struct {
	infos []nvme.FileInfo
	label func(name string, index int) int
	pos   int
}

// LoadFromDisk builds a collector over the device's manifest. label maps
// an object to its class; nil means label 0.
func LoadFromDisk(dev *nvme.Device, label func(name string, index int) int) (DataCollector, error) {
	if dev == nil {
		return nil, errors.New("core: nil disk device")
	}
	infos := dev.Manifest()
	if len(infos) == 0 {
		return nil, errors.New("core: disk manifest is empty")
	}
	return &diskCollector{infos: infos, label: label}, nil
}

func (c *diskCollector) Next() (Item, bool) {
	if c.pos >= len(c.infos) {
		return Item{}, false
	}
	fi := c.infos[c.pos]
	i := c.pos
	c.pos++
	lbl := 0
	if c.label != nil {
		lbl = c.label(fi.Name, i)
	}
	return Item{
		Ref:  fpga.DataRef{Path: fi.Name, Length: fi.Size},
		Meta: ItemMeta{Label: lbl, Seq: i, ReceivedAt: time.Now()},
	}, true
}

// netCollector receives frames from the simulated fabric (Table 1
// load_from_net). The stream ends when the fabric closes.
type netCollector struct {
	fabric *nic.Fabric
	limit  int // 0 = unlimited
	seen   int
}

// LoadFromNet builds a collector over a fabric. limit > 0 stops the
// stream after that many frames (experiment runs); 0 runs until the
// fabric closes.
func LoadFromNet(fabric *nic.Fabric, limit int) (DataCollector, error) {
	if fabric == nil {
		return nil, errors.New("core: nil fabric")
	}
	if limit < 0 {
		return nil, errors.New("core: negative frame limit")
	}
	return &netCollector{fabric: fabric, limit: limit}, nil
}

func (c *netCollector) Next() (Item, bool) {
	if c.limit > 0 && c.seen >= c.limit {
		return Item{}, false
	}
	fr, err := c.fabric.Recv()
	if err != nil {
		return Item{}, false
	}
	c.seen++
	return Item{
		Ref:  fpga.DataRef{Inline: fr.Payload},
		Meta: ItemMeta{ClientID: fr.ClientID, Seq: fr.Seq, ReceivedAt: fr.SentAt},
	}, true
}

// NextTimeout implements StreamingCollector.
func (c *netCollector) NextTimeout(d time.Duration) (Item, bool, bool) {
	if c.limit > 0 && c.seen >= c.limit {
		return Item{}, false, false
	}
	fr, ok, err := c.fabric.RecvTimeout(d)
	if err != nil {
		return Item{}, false, false
	}
	if !ok {
		return Item{}, false, true
	}
	c.seen++
	return Item{
		Ref:  fpga.DataRef{Inline: fr.Payload},
		Meta: ItemMeta{ClientID: fr.ClientID, Seq: fr.Seq, ReceivedAt: fr.SentAt},
	}, true, true
}

// sliceCollector serves an in-memory item list (tests, cached replays).
type sliceCollector struct {
	items []Item
	pos   int
}

// CollectorFromItems wraps a fixed item list.
func CollectorFromItems(items []Item) DataCollector {
	return &sliceCollector{items: items}
}

func (c *sliceCollector) Next() (Item, bool) {
	if c.pos >= len(c.items) {
		return Item{}, false
	}
	it := c.items[c.pos]
	c.pos++
	return it, true
}

// queueCollector adapts a queue of items, for producers that generate
// input concurrently.
type queueCollector struct {
	q *queue.Queue[Item]
}

// CollectorFromQueue wraps a queue; the stream ends when the queue is
// closed and drained.
func CollectorFromQueue(q *queue.Queue[Item]) DataCollector {
	return &queueCollector{q: q}
}

func (c *queueCollector) Next() (Item, bool) {
	it, err := c.q.Pop()
	if err != nil {
		return Item{}, false
	}
	return it, true
}

// NextTimeout implements StreamingCollector.
func (c *queueCollector) NextTimeout(d time.Duration) (Item, bool, bool) {
	it, ok, err := c.q.PopTimeout(d)
	if err != nil {
		return Item{}, false, false
	}
	return it, ok, true
}

var (
	_ StreamingCollector = (*netCollector)(nil)
	_ StreamingCollector = (*queueCollector)(nil)
)
