package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/nic"
	"dlbooster/internal/nvme"
	"dlbooster/internal/pix"
	"dlbooster/internal/queue"
)

// drainAll consumes and recycles every batch, returning them in arrival
// order with their pixel contents copied out (buffers are recycled).
type drained struct {
	seq    int
	images int
	pixels [][]byte
	metas  []ItemMeta
	valid  []bool
}

func drainAll(t *testing.T, b *Booster) <-chan []drained {
	t.Helper()
	out := make(chan []drained, 1)
	go func() {
		var all []drained
		for {
			batch, err := b.Batches().Pop()
			if err != nil {
				out <- all
				return
			}
			d := drained{seq: batch.Seq, images: batch.Images, metas: batch.Metas, valid: batch.Valid}
			for i := 0; i < batch.Images; i++ {
				d.pixels = append(d.pixels, append([]byte(nil), batch.Image(i)...))
			}
			all = append(all, d)
			if err := b.RecycleBatch(batch); err != nil {
				t.Errorf("recycle: %v", err)
			}
		}
	}()
	return out
}

func newBooster(t *testing.T, cfg Config) *Booster {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestRunEpochFromDisk(t *testing.T) {
	spec := dataset.MNISTLike(25)
	disk := nvme.New(nvme.Config{})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		t.Fatal(err)
	}
	b := newBooster(t, Config{
		BatchSize: 10, OutW: 28, OutH: 28, Channels: 1,
		PoolBatches: 4, Source: disk,
	})
	results := drainAll(t, b)
	col, err := LoadFromDisk(disk, func(name string, i int) int { return spec.Label(i) })
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RunEpoch(col); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	all := <-results
	// 25 images at batch 10 → batches of 10, 10 and 5 images. Batches
	// may publish out of completion order; identify them by content.
	if len(all) != 3 {
		t.Fatalf("batches = %d", len(all))
	}
	sizes := map[int]int{}
	seen := map[int]bool{}
	for _, d := range all {
		sizes[d.images]++
		for s := 0; s < d.images; s++ {
			if !d.valid[s] {
				t.Fatalf("slot %d invalid", s)
			}
			idx := d.metas[s].Seq
			if seen[idx] {
				t.Fatalf("image %d delivered twice", idx)
			}
			seen[idx] = true
			if d.metas[s].Label != spec.Label(idx) {
				t.Fatalf("image %d label = %d, want %d", idx, d.metas[s].Label, spec.Label(idx))
			}
		}
	}
	if sizes[10] != 2 || sizes[5] != 1 || len(seen) != 25 {
		t.Fatalf("batch sizes = %v, distinct images = %d", sizes, len(seen))
	}
	if b.Images() != 25 || b.DecodeErrors() != 0 {
		t.Fatalf("counters: %d images %d errors", b.Images(), b.DecodeErrors())
	}
	// Pixel content must equal reference decode+resize of the source.
	ref, err := jpeg.Decode(mustJPEG(t, spec, 0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := imageproc.Resize(ref, 28, 28, imageproc.Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	var img0 []byte
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			if d.metas[s].Seq == 0 {
				img0 = d.pixels[s]
			}
		}
	}
	got, err := pix.FromBytes(28, 28, 1, img0)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("pipeline output differs from reference by %d", d)
	}
}

func mustJPEG(t *testing.T, s dataset.Spec, i int) []byte {
	t.Helper()
	data, err := s.JPEG(i)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunEpochFromNet(t *testing.T) {
	spec := dataset.ILSVRCLike(8)
	fabric := nic.New(nic.Config{RxQueueCap: 16})
	payloads := make([][]byte, spec.Count)
	for i := range payloads {
		payloads[i] = mustJPEG(t, spec, i)
	}
	clients, err := nic.StartClients(fabric, 3, payloads)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		fabric.Close()
		clients.Stop()
	}()
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 224, OutH: 224, Channels: 3, PoolBatches: 4,
	})
	results := drainAll(t, b)
	col, err := LoadFromNet(fabric, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RunEpoch(col); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	all := <-results
	if len(all) != 3 {
		t.Fatalf("batches = %d", len(all))
	}
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			if !d.valid[s] {
				t.Fatal("network image failed decode")
			}
			if d.metas[s].ReceivedAt.IsZero() {
				t.Fatal("receive timestamp lost")
			}
		}
	}
}

func TestDecodeErrorsAreIsolated(t *testing.T) {
	spec := dataset.MNISTLike(6)
	items := make([]Item, 0, 6)
	for i := 0; i < 6; i++ {
		data := mustJPEG(t, spec, i)
		if i == 2 || i == 4 {
			data = data[:len(data)/2] // truncate: decode must fail
		}
		items = append(items, Item{Ref: fpga.DataRef{Inline: data}, Meta: ItemMeta{Label: i}})
	}
	b := newBooster(t, Config{BatchSize: 3, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2})
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	all := <-results
	if len(all) != 2 {
		t.Fatalf("batches = %d", len(all))
	}
	if b.DecodeErrors() != 2 || b.Images() != 4 {
		t.Fatalf("errors=%d images=%d", b.DecodeErrors(), b.Images())
	}
	// Items 2 and 4 were truncated: their slots (and only theirs) must be
	// invalid, wherever their batch landed in the queue.
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			wantValid := d.metas[s].Label != 2 && d.metas[s].Label != 4
			if d.valid[s] != wantValid {
				t.Fatalf("item %d valid = %v, want %v", d.metas[s].Label, d.valid[s], wantValid)
			}
		}
	}
}

func TestCacheReplay(t *testing.T) {
	spec := dataset.MNISTLike(12)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Label: spec.Label(i)}}
	}
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		CacheLimitBytes: 1 << 20,
	})
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	if !b.CacheComplete() || b.CachedBatches() != 3 {
		t.Fatalf("cache: complete=%v batches=%d", b.CacheComplete(), b.CachedBatches())
	}
	// Epoch 2 from cache: no decoder work.
	_, huffBefore, _, _ := b.Device().Stats()
	if err := b.ReplayCache(); err != nil {
		t.Fatal(err)
	}
	_, huffAfter, _, _ := b.Device().Stats()
	if huffAfter.Jobs != huffBefore.Jobs {
		t.Fatal("cache replay touched the decoder")
	}
	b.CloseBatches()
	all := <-results
	if len(all) != 6 {
		t.Fatalf("total batches = %d (epoch1 3 + epoch2 3)", len(all))
	}
	// Replayed content equals first-epoch content.
	for i := 0; i < 3; i++ {
		for s := range all[i].pixels {
			a, c := all[i].pixels[s], all[i+3].pixels[s]
			for j := range a {
				if a[j] != c[j] {
					t.Fatalf("replayed batch %d slot %d differs", i, s)
				}
			}
			if all[i].metas[s].Label != all[i+3].metas[s].Label {
				t.Fatal("replayed labels differ")
			}
		}
	}
	if b.Images() != 24 {
		t.Fatalf("Images = %d (12 decoded + 12 replayed)", b.Images())
	}
}

func TestCacheOverflowDisablesReplay(t *testing.T) {
	spec := dataset.MNISTLike(8)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}}
	}
	b := newBooster(t, Config{
		BatchSize: 2, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		CacheLimitBytes: 3 * 28 * 28, // fits one 2-image batch, not the epoch
	})
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	<-results
	if b.CacheComplete() {
		t.Fatal("overflowing cache reported complete")
	}
	if err := b.ReplayCache(); !errors.Is(err, ErrCacheUnavailable) {
		t.Fatalf("ReplayCache = %v, want ErrCacheUnavailable", err)
	}
}

func TestReplayWithoutCacheFails(t *testing.T) {
	b := newBooster(t, Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2})
	if err := b.ReplayCache(); !errors.Is(err, ErrCacheUnavailable) {
		t.Fatalf("ReplayCache = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BatchSize: 0, OutW: 8, OutH: 8, Channels: 1},
		{BatchSize: 1, OutW: 0, OutH: 8, Channels: 1},
		{BatchSize: 1, OutW: 8, OutH: 8, Channels: 2},
		{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 1},
		{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1, Mirror: "nope"},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunEpochNilCollector(t *testing.T) {
	b := newBooster(t, Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2})
	if err := b.RunEpoch(nil); err == nil {
		t.Fatal("nil collector accepted")
	}
}

func TestBackpressurePausesReader(t *testing.T) {
	// With nobody draining, the reader must park on the pool once all
	// buffers are sealed/in flight — and resume when a consumer appears.
	spec := dataset.MNISTLike(20)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}}
	}
	b := newBooster(t, Config{BatchSize: 2, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2})
	done := make(chan error, 1)
	go func() { done <- b.RunEpoch(CollectorFromItems(items)) }()
	select {
	case err := <-done:
		t.Fatalf("RunEpoch returned without a consumer: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	results := drainAll(t, b)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not resume after consumer started")
	}
	b.CloseBatches()
	all := <-results
	if len(all) != 10 {
		t.Fatalf("batches = %d", len(all))
	}
}

func TestCollectorsValidation(t *testing.T) {
	if _, err := LoadFromDisk(nil, nil); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := LoadFromDisk(nvme.New(nvme.Config{}), nil); err == nil {
		t.Fatal("empty manifest accepted")
	}
	if _, err := LoadFromNet(nil, 0); err == nil {
		t.Fatal("nil fabric accepted")
	}
	if _, err := LoadFromNet(nic.New(nic.Config{}), -1); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestQueueCollector(t *testing.T) {
	q := newItemQueue(4)
	go func() {
		for i := 0; i < 3; i++ {
			_ = q.Push(Item{Meta: ItemMeta{Seq: i}})
		}
		q.Close()
	}()
	col := CollectorFromQueue(q)
	var seqs []int
	for {
		it, ok := col.Next()
		if !ok {
			break
		}
		seqs = append(seqs, it.Meta.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 0 || seqs[2] != 2 {
		t.Fatalf("seqs = %v", seqs)
	}
}

func TestConcurrentEpochAndDrainStress(t *testing.T) {
	spec := dataset.MNISTLike(40)
	var payloads [][]byte
	for i := 0; i < spec.Count; i++ {
		payloads = append(payloads, mustJPEG(t, spec, i))
	}
	b := newBooster(t, Config{BatchSize: 8, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2})
	var wg sync.WaitGroup
	results := drainAll(t, b)
	for epoch := 0; epoch < 3; epoch++ {
		items := make([]Item, len(payloads))
		for i, p := range payloads {
			items[i] = Item{Ref: fpga.DataRef{Inline: p}, Meta: ItemMeta{Seq: epoch*1000 + i}}
		}
		wg.Add(1)
		func() { // epochs are sequential; drain is concurrent
			defer wg.Done()
			if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
				t.Errorf("epoch %d: %v", epoch, err)
			}
		}()
	}
	wg.Wait()
	b.CloseBatches()
	all := <-results
	if len(all) != 15 {
		t.Fatalf("batches = %d, want 15", len(all))
	}
	if b.Images() != 120 {
		t.Fatalf("Images = %d", b.Images())
	}
}

func newItemQueue(n int) *queue.Queue[Item] { return queue.New[Item](n) }

func TestMultiFPGADevices(t *testing.T) {
	spec := dataset.MNISTLike(32)
	items := make([]Item, spec.Count)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Seq: i}}
	}
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1,
		PoolBatches: 4, FPGADevices: 3,
	})
	if len(b.Devices()) != 3 {
		t.Fatalf("devices = %d", len(b.Devices()))
	}
	results := drainAll(t, b)
	if err := b.RunEpoch(CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	all := <-results
	seen := map[int]bool{}
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			if !d.valid[s] {
				t.Fatalf("item %d invalid", d.metas[s].Seq)
			}
			seen[d.metas[s].Seq] = true
		}
	}
	if len(seen) != 32 {
		t.Fatalf("delivered %d distinct images", len(seen))
	}
	// Round-robin must spread work across every board.
	for i, dev := range b.Devices() {
		parser, _, _, _ := dev.Stats()
		if parser.Jobs == 0 {
			t.Fatalf("device %d received no commands", i)
		}
	}
	if b.Images() != 32 {
		t.Fatalf("Images = %d", b.Images())
	}
}

func TestMultiFPGAConfigValidation(t *testing.T) {
	if _, err := New(Config{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, FPGADevices: -1}); err == nil {
		t.Fatal("negative device count accepted")
	}
}

// TestStreamingStallPublishesInFlightBatches: with a paused streaming
// collector, a sealed batch whose FINISH signals arrive after the last
// item must still publish — the reader keeps draining completions while
// waiting (the online-server case the closed-loop paper never hits).
func TestStreamingStallPublishesInFlightBatches(t *testing.T) {
	spec := dataset.MNISTLike(4)
	b := newBooster(t, Config{BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2})
	items := queue.New[Item](8)
	epochDone := make(chan error, 1)
	go func() { epochDone <- b.RunEpoch(CollectorFromQueue(items)) }()
	for i := 0; i < 4; i++ {
		_ = items.Push(Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Seq: i}})
	}
	// No further items arrive; the queue stays open (stream paused).
	// The sealed batch must still appear.
	batch, ok, err := b.Batches().PopTimeout(5 * time.Second)
	if err != nil || !ok {
		t.Fatalf("batch did not publish during stream pause: ok=%v err=%v", ok, err)
	}
	if batch.Images != 4 || batch.ValidCount() != 4 {
		t.Fatalf("batch = %d images, %d valid", batch.Images, batch.ValidCount())
	}
	if err := b.RecycleBatch(batch); err != nil {
		t.Fatal(err)
	}
	items.Close()
	if err := <-epochDone; err != nil {
		t.Fatal(err)
	}
}
