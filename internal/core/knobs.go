// The runtime-tunable knob block of a running Booster: the dynamic-
// batching deadline and the fractional FPGA/CPU decode split, settable
// from any goroutine while epochs run. These are the per-pipeline
// actuation points of the adaptive SLO autotuner (internal/control) —
// the third knob, the admission threshold, lives with the ingest queue
// (fleet.Shard, dlserve's front door) rather than here. Construction
// seeds both knobs from Config, so a pipeline that never retunes
// behaves exactly as configured.

package core

import "time"

// cpuShareScale is the fixed-point scale the CPU-share knob is stored
// at (atomic integers; floats have no atomic ops). 2^20 steps keep the
// quantisation error far below anything the error-diffusion router
// could express over an epoch.
const cpuShareScale = 1 << 20

// SetBatchTimeout retunes the dynamic-batching deadline at runtime.
//
// Ordering contract: the collector re-reads the knob each time a new
// building batch arms its flush deadline (when the batch's first item
// lands), so a retune takes effect at the next deadline arm — mid-
// epoch, but never mid-batch. A batch already armed keeps the deadline
// it was armed with until it seals; a retune to 0 (strict batches)
// likewise applies from the next batch on. Safe from any goroutine.
func (b *Booster) SetBatchTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.batchTimeoutNs.Store(int64(d))
}

// BatchTimeout returns the effective dynamic-batching deadline — the
// value the next deadline arm will use (Config.BatchTimeout until the
// first SetBatchTimeout).
func (b *Booster) BatchTimeout() time.Duration {
	return time.Duration(b.batchTimeoutNs.Load())
}

// SetCPUShare retunes the fractional FPGA/CPU decode split: the given
// fraction [0,1] of decode submissions is routed to the host CPU
// decode path instead of the FPGA boards — deliberate load-splitting,
// unlike the all-or-nothing degradation latch the failure policy
// flips. The collector spreads the share with an error-diffusion
// accumulator (a 0.25 share CPU-decodes every 4th item, not bursts of
// four), re-reading the knob per submission, so a retune takes effect
// on the very next item. Out-of-range values clamp; degraded mode
// overrides any share (everything is on the CPU already). Safe from
// any goroutine.
func (b *Booster) SetCPUShare(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	b.cpuShareUnits.Store(int64(f*cpuShareScale + 0.5))
}

// CPUShare returns the effective fractional CPU decode share (0 until
// the first SetCPUShare).
func (b *Booster) CPUShare() float64 {
	return float64(b.cpuShareUnits.Load()) / cpuShareScale
}

// OffloadDecodes returns the count of images decoded on the CPU by the
// fractional offload knob — distinct from FallbackDecodes, which
// counts the failure policy's rescue and degraded-mode decodes.
func (b *Booster) OffloadDecodes() int64 { return b.offloads.Value() }
