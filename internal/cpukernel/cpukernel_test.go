package cpukernel

import "testing"

// The registry is process-global and registration is permanent, so this
// file is one sequential scenario: each step builds on the registrations
// of the previous ones, exactly like package init order does in the real
// process.

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func TestRegistrySelection(t *testing.T) {
	prev := ScalarOnly()
	t.Cleanup(func() { SetScalarOnly(prev) })
	SetScalarOnly(false)

	if got := Names(); len(got) == 0 || got[0] != ScalarName && !contains(got, ScalarName) {
		t.Fatalf("scalar reference missing from registry: %v", got)
	}

	mustPanic(t, "empty-name Register", func() { Register(Impl{Priority: 1}) })

	Register(Impl{Name: "turbo-test", Priority: 5})
	if Active() != "turbo-test" || !Fast() {
		t.Fatalf("after registering priority 5: active %q fast %v", Active(), Fast())
	}

	mustPanic(t, "duplicate Register", func() { Register(Impl{Name: "turbo-test", Priority: 9}) })

	// An unavailable implementation never wins, whatever its priority.
	Register(Impl{Name: "unavailable-test", Priority: 50, Available: func() bool { return false }})
	if Active() != "turbo-test" {
		t.Fatalf("unavailable implementation selected: active %q", Active())
	}

	Register(Impl{Name: "mega-test", Priority: 10})
	if Active() != "mega-test" {
		t.Fatalf("higher priority did not win: active %q", Active())
	}

	// Priority ties break deterministically by name.
	Register(Impl{Name: "alpha-test", Priority: 10})
	if Active() != "alpha-test" {
		t.Fatalf("tie-break not deterministic by name: active %q", Active())
	}

	// The kill switch pins scalar regardless of the registry, and
	// releasing it re-runs selection.
	SetScalarOnly(true)
	if Active() != ScalarName || Fast() || !ScalarOnly() {
		t.Fatalf("kill switch engaged: active %q fast %v scalarOnly %v", Active(), Fast(), ScalarOnly())
	}
	SetScalarOnly(false)
	if Active() != "alpha-test" || !Fast() {
		t.Fatalf("kill switch released: active %q fast %v", Active(), Fast())
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
