// Package cpukernel is the capability registry for the CPU decode
// kernels: the pluggable fast implementations of the three hot decode
// loops (iDCT, YCbCr→RGB, bilinear resize) register here by name, the
// best available one is selected at init, and a kill switch pins the
// portable scalar reference everywhere.
//
// The pattern deliberately mirrors the FPGA mirror registry
// (internal/fpga): implementations are deployment identifiers that
// register by name with a priority and an availability probe, and a
// consumer picks the active one at run time. Unlike mirrors, kernel
// selection is process-global — the kernels are pure functions over
// bytes, so there is nothing per-device about them — and every fast
// implementation is required to be numerically exact against the scalar
// reference (parity-tested byte for byte in the packages that register
// them), so flipping the switch changes speed, never output.
//
// Kill switches, strongest first:
//
//   - the DLBOOSTER_NO_SIMD environment variable (any non-empty value)
//     pins "scalar" before main runs;
//   - SetScalarOnly(true) pins "scalar" at run time (wired to
//     core.Config.DisableSIMDKernels, backends.CPUConfig and the
//     dlbench -no-simd flag).
package cpukernel

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Impl describes one registered kernel implementation.
type Impl struct {
	// Name is the implementation's deployment identifier ("scalar",
	// "swar", …).
	Name string
	// Priority orders selection: the highest-priority available
	// implementation wins. The scalar reference registers at 0; pure-Go
	// SWAR registers above it; a future assembly kernel would register
	// higher still.
	Priority int
	// Available reports whether the host can run this implementation
	// (nil means always available — the case for pure-Go kernels).
	Available func() bool
}

// ScalarName is the name of the portable reference implementation,
// always registered and always available.
const ScalarName = "scalar"

var (
	mu         sync.RWMutex
	impls      = map[string]Impl{ScalarName: {Name: ScalarName}}
	scalarOnly atomic.Bool
	// fast caches the selection as a single atomic so the per-image hot
	// paths pay one atomic load, not a registry lookup.
	fast atomic.Bool
	// activeName is the resolved implementation name.
	activeName atomic.Value // string
)

func init() {
	activeName.Store(ScalarName)
	if os.Getenv("DLBOOSTER_NO_SIMD") != "" {
		scalarOnly.Store(true)
	}
}

// Register adds a kernel implementation and re-runs selection.
// Registering a duplicate name panics: kernel names are deployment
// identifiers, exactly like mirror names.
func Register(i Impl) {
	if i.Name == "" {
		panic("cpukernel: registering kernel with empty name")
	}
	mu.Lock()
	if _, dup := impls[i.Name]; dup {
		mu.Unlock()
		panic(fmt.Sprintf("cpukernel: duplicate kernel %q", i.Name))
	}
	impls[i.Name] = i
	mu.Unlock()
	reselect()
}

// Names lists registered implementations, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(impls))
	for n := range impls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Active returns the name of the selected implementation.
func Active() string { return activeName.Load().(string) }

// Fast reports whether a non-scalar implementation is active — the
// one-atomic-load check the per-image decode paths make.
func Fast() bool { return fast.Load() }

// SetScalarOnly engages (or releases) the kill switch: while set, the
// scalar reference is selected regardless of what else is registered.
// It is safe to call from any goroutine; decodes already in flight
// finish on whichever kernels they picked up.
func SetScalarOnly(disable bool) {
	scalarOnly.Store(disable)
	reselect()
}

// ScalarOnly reports whether the kill switch is engaged.
func ScalarOnly() bool { return scalarOnly.Load() }

// reselect recomputes the active implementation: the highest-priority
// available registrant, or scalar under the kill switch. Ties break by
// name so selection is deterministic.
func reselect() {
	if scalarOnly.Load() {
		activeName.Store(ScalarName)
		fast.Store(false)
		return
	}
	mu.RLock()
	best := impls[ScalarName]
	for _, i := range impls {
		if i.Available != nil && !i.Available() {
			continue
		}
		if i.Priority > best.Priority || (i.Priority == best.Priority && i.Name < best.Name) {
			best = i
		}
	}
	mu.RUnlock()
	activeName.Store(best.Name)
	fast.Store(best.Name != ScalarName)
}
