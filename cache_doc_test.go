package dlbooster

// cache_doc_test pins docs/CACHE.md to the code: the config knobs,
// unavailability causes, spill record constants, pacing figures, CLI
// flags and every cache_* metric a cache-enabled pipeline exports must
// appear in the handbook, so the cache cannot grow surface the
// handbook doesn't describe.

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
)

// cacheSnapshot runs one tiny cache-enabled epoch plus a replay — RAM
// tier sized to half the decoded set so the spill tier, demotions and
// both hit paths all exercise — and returns the snapshot.
func cacheSnapshot(t *testing.T) *metrics.PipelineSnapshot {
	t.Helper()
	const n, batch = 16, 4
	spec := dataset.MNISTLike(n)
	items := make([]core.Item, n)
	for i := range items {
		data, err := spec.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = core.Item{Ref: fpga.DataRef{Inline: data}, Meta: core.ItemMeta{Label: spec.Label(i), Seq: i}}
	}
	reg := metrics.NewRegistry()
	b, err := core.New(core.Config{
		BatchSize: batch, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		Metrics: reg,
		Cache: core.CacheConfig{
			RAMBytes: int64(n * 28 * 28 / 2),
			Spill:    nvme.New(nvme.Config{}),
			Compress: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			batch, err := b.Batches().Pop()
			if err != nil {
				return
			}
			_ = b.RecycleBatch(batch)
		}
	}()
	if err := b.RunEpoch(core.CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	if err := b.ReplayCache(); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	<-done
	return reg.Snapshot()
}

func TestCacheHandbookPinned(t *testing.T) {
	docBytes, err := os.ReadFile("docs/CACHE.md")
	if err != nil {
		t.Fatalf("the cache handbook is missing: %v", err)
	}
	doc := string(docBytes)

	var wanted []string
	// Every CacheConfig knob, by field name.
	cfgType := reflect.TypeOf(core.CacheConfig{})
	for i := 0; i < cfgType.NumField(); i++ {
		wanted = append(wanted, "`"+cfgType.Field(i).Name+"`")
	}
	// The unavailability contract.
	wanted = append(wanted,
		"`ErrCacheUnavailable`", "`ErrCacheDisabled`", "`ErrCacheNeverFilled`",
		"`ErrCacheOverRAMLimit`", "`ErrCacheEvicted`",
	)
	// The spill record constants, with their actual values.
	wanted = append(wanted,
		fmt.Sprintf("`%q` (`SpillMagic`)", core.SpillMagic),
		fmt.Sprintf("`%d` (`SpillFormatVersion`)", core.SpillFormatVersion),
		fmt.Sprintf("`SpillHeaderSize` = %d", core.SpillHeaderSize),
	)
	// The pacing figures the sizing example is computed from.
	wanted = append(wanted,
		fmt.Sprintf("%.1f GB/s", perf.NVMeReadBandwidth/1e9),
		fmt.Sprintf("%.1f GB/s", perf.NVMeWriteBandwidth/1e9),
	)
	// The CLI surface.
	wanted = append(wanted,
		"-cache-mb", "-cache-spill-mb", "-cache-compress", "-replay-epochs",
	)
	for _, w := range wanted {
		if !strings.Contains(doc, w) {
			t.Errorf("docs/CACHE.md does not mention %s", w)
		}
	}

	// Every cache metric a cache-enabled pipeline actually exports.
	snap := cacheSnapshot(t)
	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sawCacheMetric := false
	for _, name := range names {
		if !strings.HasPrefix(name, "cache_") {
			continue
		}
		sawCacheMetric = true
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/CACHE.md does not document exported metric `%s`", name)
		}
	}
	if !sawCacheMetric {
		t.Fatal("the instrumented run exported no cache_* metrics; the pin is vacuous")
	}
}
