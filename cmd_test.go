package dlbooster

// Exec-level smoke tests: build each command once and drive its primary
// flow, so flag wiring and main-package glue stay working.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dlbooster/internal/metrics"
)

// buildCmds compiles every command into a temp dir once per test run.
func buildCmds(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"dlbench", "dlgen", "dltrain", "dlserve"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	bin := filepath.Join(dir, "benchdiff")
	out, err := exec.Command("go", "build", "-o", bin, "./tools/benchdiff").CombinedOutput()
	if err != nil {
		t.Fatalf("building benchdiff: %v\n%s", err, out)
	}
	bins["benchdiff"] = bin
	return bins
}

// buildCmd compiles a single command, for tests that only need one
// binary (the CI flaky-guard runs these under -race -count=3).
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// startServe launches a dlserve server and returns its binary path and
// combined output buffer; the server is killed at test cleanup.
func startServe(t *testing.T, bin string, args ...string) *bytes.Buffer {
	t.Helper()
	srv := exec.Command(bin, args...)
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Process.Kill()
		_, _ = srv.Process.Wait()
	})
	return &srvOut
}

// runClient retries a dlserve client until the server is listening.
func runClient(t *testing.T, bin string, srvOut *bytes.Buffer, args ...string) string {
	t.Helper()
	var out []byte
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		out, err = exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			return string(out)
		}
	}
	t.Fatalf("client: %v\n%s\nserver:\n%s", err, out, srvOut.String())
	return ""
}

// TestServePartialBatch is the ISSUE-4 acceptance scenario: 5 images
// into a -batch 8 server must yield 5 predictions via the deadline
// flush — no full batch ever forms and the server never shuts down.
func TestServePartialBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test in -short mode")
	}
	bin := buildCmd(t, "dlserve")
	srvOut := startServe(t, bin,
		"-listen", "127.0.0.1:39474", "-batch", "8", "-batch-timeout", "50ms", "-size", "64")
	out := runClient(t, bin, srvOut, "-connect", "127.0.0.1:39474", "-n", "5")
	if !strings.Contains(out, "5 predictions, 0 shed") {
		t.Fatalf("client output:\n%s\nserver:\n%s", out, srvOut.String())
	}
	if !strings.Contains(out, "receipt→prediction latency") {
		t.Fatalf("no latency stats:\n%s", out)
	}
}

// TestServeOverload wedges the decoder so the pipeline absorbs almost
// nothing: a tiny ingest queue must shed the flood with status frames
// (bounded memory) instead of blocking ingest, and the client's -wait
// bound must turn the never-arriving predictions into a clean exit.
func TestServeOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test in -short mode")
	}
	bin := buildCmd(t, "dlserve")
	srvOut := startServe(t, bin,
		"-listen", "127.0.0.1:39475", "-batch", "4", "-size", "64",
		"-queue", "2", "-batch-timeout", "5ms", "-fault-fpga", "stuck-after=1")
	out := runClient(t, bin, srvOut,
		"-connect", "127.0.0.1:39475", "-n", "160", "-wait", "2s")
	m := regexp.MustCompile(`(\d+) shed`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no shed count in client output:\n%s\nserver:\n%s", out, srvOut.String())
	}
	if shed, _ := strconv.Atoi(m[1]); shed == 0 {
		t.Fatalf("overloaded server shed nothing:\n%s\nserver:\n%s", out, srvOut.String())
	}
}

// TestServeShards is the ISSUE-6 acceptance scenario: a closed-loop
// client over a 2-shard server with a request count no batch divides
// evenly must get every prediction back (deadline flush per shard), and
// /metrics.json must serve the fleet rollup — per-shard snapshots plus
// counter totals — with /trace.json carrying one process track per
// shard.
func TestServeShards(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test in -short mode")
	}
	bin := buildCmd(t, "dlserve")
	srvOut := startServe(t, bin,
		"-listen", "127.0.0.1:39476", "-shards", "2", "-batch", "8",
		"-batch-timeout", "50ms", "-size", "64",
		"-metrics-addr", "127.0.0.1:39477")
	out := runClient(t, bin, srvOut, "-connect", "127.0.0.1:39476", "-n", "13")
	if !strings.Contains(out, "13 predictions, 0 shed") {
		t.Fatalf("client output:\n%s\nserver:\n%s", out, srvOut.String())
	}
	if !strings.Contains(out, "receipt→prediction latency") {
		t.Fatalf("no latency stats:\n%s", out)
	}

	// The fleet rollup: per-shard snapshots plus totals that conserve
	// the counters.
	resp, err := http.Get("http://127.0.0.1:39477/metrics.json")
	if err != nil {
		t.Fatalf("GET /metrics.json: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap struct {
		Shards []struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"shards"`
		Total struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"total"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics.json: %v\n%s", err, body)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("fleet snapshot has %d shards:\n%s", len(snap.Shards), body)
	}
	if got := snap.Total.Counters["images_decoded_total"]; got != 13 {
		t.Fatalf("fleet total images_decoded_total = %d, want 13\n%s", got, body)
	}
	var sum int64
	for _, s := range snap.Shards {
		sum += s.Counters["images_decoded_total"]
	}
	if sum != snap.Total.Counters["images_decoded_total"] {
		t.Fatalf("rollup total %d != shard sum %d", snap.Total.Counters["images_decoded_total"], sum)
	}

	// Per-shard process tracks in the trace timeline.
	resp, err = http.Get("http://127.0.0.1:39477/trace.json")
	if err != nil {
		t.Fatalf("GET /trace.json: %v", err)
	}
	trace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, track := range []string{`"shard 0"`, `"shard 1"`} {
		if !strings.Contains(string(trace), track) {
			t.Fatalf("/trace.json missing %s track:\n%.400s", track, trace)
		}
	}
}

// TestServeHistorySLO is the ISSUE-8 acceptance scenario: a dlserve
// run with windowed telemetry on must serve the sampled history ring at
// /history.json, and the shutdown report must include the trend-doctor
// verdict and the SLO scorecard judged over the window.
func TestServeHistorySLO(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test in -short mode")
	}
	bin := buildCmd(t, "dlserve")
	srv := exec.Command(bin,
		"-listen", "127.0.0.1:39478", "-batch", "4", "-size", "64",
		"-history", "25ms", "-history-samples", "2000", "-slo", "tput=0.1,shed=0.5",
		"-metrics-addr", "127.0.0.1:39479")
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_, _ = srv.Process.Wait()
	}()
	out := runClient(t, bin, &srvOut, "-connect", "127.0.0.1:39478", "-n", "16")
	if !strings.Contains(out, "16 predictions, 0 shed") {
		t.Fatalf("client output:\n%s\nserver:\n%s", out, srvOut.String())
	}

	// The ring has had time to collect several 25ms samples by the time
	// the client round trip finished; /history.json serves the dump.
	var dump struct {
		Capacity int `json:"capacity"`
		Recorded int `json:"recorded"`
		Samples  []struct {
			Delta struct {
				Counters map[string]int64 `json:"counters"`
			} `json:"delta"`
		} `json:"samples"`
	}
	// The ring lags decode completion by up to one sampling interval, so
	// poll until the interval deltas account for every decoded image.
	var decoded int64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://127.0.0.1:39479/history.json")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(body, &dump); err != nil {
				t.Fatalf("/history.json: %v\n%s", err, body)
			}
			decoded = 0
			for _, s := range dump.Samples {
				decoded += s.Delta.Counters["images_decoded_total"]
			}
			if len(dump.Samples) >= 3 && decoded == 16 {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(dump.Samples) < 3 || dump.Recorded < 3 {
		t.Fatalf("history ring has %d samples (%d recorded)\nserver:\n%s",
			len(dump.Samples), dump.Recorded, srvOut.String())
	}
	if decoded != 16 {
		t.Fatalf("history deltas sum to %d decoded images, want 16", decoded)
	}

	// Shutdown: the drain report includes the trend verdict and the
	// scorecard (16 images at any rate beats tput=0.1, nothing shed).
	// Join the process before reading the buffer — exec's output copier
	// writes into srvOut until the child exits.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if s, ok := waitOutput(t, srv, &srvOut); ok {
		if strings.Contains(s, "SLO") && strings.Contains(s, "trend verdict") {
			if !strings.Contains(s, "MET") {
				t.Fatalf("scorecard not MET:\n%s", s)
			}
			return
		}
	}
	t.Fatalf("shutdown report lacks trend verdict + scorecard:\n%s", srvOut.String())
}

// TestServeAutotune is the ISSUE-9 acceptance scenario: a dlserve run
// with the adaptive autotuner on must serve normally, and the shutdown
// report must include the controller's decision ledger and knob
// trajectory.
func TestServeAutotune(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test in -short mode")
	}
	bin := buildCmd(t, "dlserve")
	srv := exec.Command(bin,
		"-listen", "127.0.0.1:39480", "-batch", "4", "-size", "64",
		"-batch-timeout", "50ms", "-queue", "64",
		"-history", "25ms", "-autotune", "tput=0.1,window=1s")
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_, _ = srv.Process.Wait()
	}()
	out := runClient(t, bin, &srvOut, "-connect", "127.0.0.1:39480", "-n", "16")
	if !strings.Contains(out, "16 predictions, 0 shed") {
		t.Fatalf("client output:\n%s", out)
	}
	// Shutdown, then read the full transcript: the startup banner names
	// the steering target, and the drain report includes the decision
	// ledger with the knob trajectory.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	s, ok := waitOutput(t, srv, &srvOut)
	if !ok {
		t.Fatalf("server did not exit after SIGINT:\n%s", s)
	}
	if !strings.Contains(s, "autotune steering toward") {
		t.Fatalf("no autotune banner:\n%s", s)
	}
	if !strings.Contains(s, "autotune:") || !strings.Contains(s, "decisions") ||
		!strings.Contains(s, "batch_timeout") {
		t.Fatalf("shutdown report lacks the autotune ledger:\n%s", s)
	}
}

// waitOutput joins the server process after a shutdown signal — exec's
// output copier writes into buf until the child exits, so reading the
// buffer before Wait races with it — and returns the full transcript.
// ok is false when the process outlived the drain deadline.
func waitOutput(t *testing.T, srv *exec.Cmd, buf *bytes.Buffer) (string, bool) {
	t.Helper()
	done := make(chan struct{})
	go func() { _ = srv.Wait(); close(done) }()
	select {
	case <-done:
		return buf.String(), true
	case <-time.After(15 * time.Second):
		_ = srv.Process.Kill()
		<-done
		return buf.String(), false
	}
}

func TestCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("exec smoke tests in -short mode")
	}
	bins := buildCmds(t)

	t.Run("dlbench", func(t *testing.T) {
		out, err := exec.Command(bins["dlbench"], "-fig", "econ").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "cores replaced per FPGA") {
			t.Fatalf("unexpected output:\n%s", out)
		}
		out, err = exec.Command(bins["dlbench"], "-list").CombinedOutput()
		if err != nil || !strings.Contains(string(out), "fig7a") {
			t.Fatalf("dlbench -list: %v\n%s", err, out)
		}
		if out, err := exec.Command(bins["dlbench"], "-fig", "nope").CombinedOutput(); err == nil {
			t.Fatalf("unknown figure accepted:\n%s", out)
		}
	})

	t.Run("dlgen", func(t *testing.T) {
		dir := t.TempDir()
		lmdbPath := filepath.Join(dir, "snap.lmdb")
		out, err := exec.Command(bins["dlgen"],
			"-kind", "mnist", "-count", "6",
			"-out", filepath.Join(dir, "jpgs"),
			"-lmdb", lmdbPath, "-outw", "28", "-outh", "28").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		files, err := os.ReadDir(filepath.Join(dir, "jpgs"))
		if err != nil || len(files) != 6 {
			t.Fatalf("jpgs: %v, %d files", err, len(files))
		}
		if fi, err := os.Stat(lmdbPath); err != nil || fi.Size() == 0 {
			t.Fatalf("lmdb snapshot: %v", err)
		}
		if out, err := exec.Command(bins["dlgen"], "-kind", "bogus").CombinedOutput(); err == nil {
			t.Fatalf("bogus kind accepted:\n%s", out)
		}
	})

	t.Run("dltrain", func(t *testing.T) {
		out, err := exec.Command(bins["dltrain"],
			"-backend", "dlbooster", "-images", "64", "-batch", "16",
			"-gpus", "2", "-epochs", "2").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		s := string(out)
		if !strings.Contains(s, "hybrid mode") {
			t.Fatalf("epoch 2 did not use the cache:\n%s", s)
		}
		if !strings.Contains(s, "images trained:    128") {
			t.Fatalf("wrong image count:\n%s", s)
		}
	})

	t.Run("dlserve", func(t *testing.T) {
		// Server in background on a fixed local port, then the client.
		srv := exec.Command(bins["dlserve"], "-listen", "127.0.0.1:39471", "-batch", "4", "-size", "64")
		var srvOut bytes.Buffer
		srv.Stdout, srv.Stderr = &srvOut, &srvOut
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			_ = srv.Process.Kill()
			_, _ = srv.Process.Wait()
		}()
		// The client retries until the server listens.
		var out []byte
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			out, err = exec.Command(bins["dlserve"], "-connect", "127.0.0.1:39471", "-n", "16").CombinedOutput()
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("client: %v\n%s\nserver:\n%s", err, out, srvOut.String())
		}
		if !strings.Contains(string(out), "receipt→prediction latency") {
			t.Fatalf("client output:\n%s", out)
		}
	})

	t.Run("dlbench-doctor", func(t *testing.T) {
		out, err := exec.Command(bins["dlbench"], "-doctor", "-metrics-images", "32").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "verdict:") {
			t.Fatalf("doctor output has no verdict:\n%s", out)
		}
	})

	t.Run("bench-trajectory", func(t *testing.T) {
		dir := t.TempDir()
		base := filepath.Join(dir, "BENCH_base.json")
		cur := filepath.Join(dir, "BENCH_cur.json")
		for _, path := range []string{base, cur} {
			out, err := exec.Command(bins["dlbench"], "-json", path, "-metrics-images", "32").CombinedOutput()
			if err != nil {
				t.Fatalf("dlbench -json: %v\n%s", err, out)
			}
		}
		// Back-to-back runs of the same scenario compare clean at a wide
		// threshold.
		out, err := exec.Command(bins["benchdiff"], "-threshold", "10", base, cur).CombinedOutput()
		if err != nil {
			t.Fatalf("benchdiff: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "PASS") {
			t.Fatalf("benchdiff output:\n%s", out)
		}
		// A config mismatch is an error (exit 2), not a comparison.
		mismatch := filepath.Join(dir, "BENCH_other.json")
		if out, err := exec.Command(bins["dlbench"], "-json", mismatch, "-metrics-images", "32", "-metrics-batch", "4").CombinedOutput(); err != nil {
			t.Fatalf("dlbench -json: %v\n%s", err, out)
		}
		if out, err := exec.Command(bins["benchdiff"], base, mismatch).CombinedOutput(); err == nil {
			t.Fatalf("mismatched configs compared:\n%s", out)
		}
	})

	t.Run("slo-gate", func(t *testing.T) {
		dir := t.TempDir()
		good := filepath.Join(dir, "BENCH_slo_good.json")
		bad := filepath.Join(dir, "BENCH_slo_bad.json")
		plain := filepath.Join(dir, "BENCH_plain.json")
		// A generous SLO the traced run always meets…
		out, err := exec.Command(bins["dlbench"], "-json", good,
			"-metrics-images", "32", "-slo", "tput=0.1,shed=0.5").CombinedOutput()
		if err != nil {
			t.Fatalf("dlbench -slo: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "SLO") || !strings.Contains(string(out), "MET") {
			t.Fatalf("no scorecard in -slo output:\n%s", out)
		}
		// …an unreachable one the gate must catch…
		if out, err := exec.Command(bins["dlbench"], "-json", bad,
			"-metrics-images", "32", "-slo", "tput=1e12,shed=0.5").CombinedOutput(); err != nil {
			t.Fatalf("dlbench -slo: %v\n%s", err, out)
		}
		// …and a run that declared no SLO at all.
		if out, err := exec.Command(bins["dlbench"], "-json", plain, "-metrics-images", "32").CombinedOutput(); err != nil {
			t.Fatalf("dlbench -json: %v\n%s", err, out)
		}
		// Met scorecard: the gate passes alongside the threshold check.
		out, err = exec.Command(bins["benchdiff"], "-threshold", "1000", "-slo-gate", good, good).CombinedOutput()
		if err != nil || !strings.Contains(string(out), "SLO PASS") {
			t.Fatalf("slo-gate on met scorecard: %v\n%s", err, out)
		}
		// Violated scorecard fails the gate (exit 1); the scorecard-less
		// baseline is fine, only the new file must carry one.
		out, err = exec.Command(bins["benchdiff"], "-threshold", "1000", "-slo-gate", plain, bad).CombinedOutput()
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("violated scorecard not gated (err %v):\n%s", err, out)
		}
		// A new result without a scorecard is misuse (exit 2), not a pass.
		out, err = exec.Command(bins["benchdiff"], "-threshold", "1000", "-slo-gate", good, plain).CombinedOutput()
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Fatalf("missing scorecard not misuse (err %v):\n%s", err, out)
		}
		// Mismatched specs are never compared (exit 2).
		out, err = exec.Command(bins["benchdiff"], "-threshold", "1000", "-slo-gate", good, bad).CombinedOutput()
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Fatalf("mismatched SLO specs compared (err %v):\n%s", err, out)
		}
		// A bad spec fails before the run.
		if _, err := exec.Command(bins["dlbench"], "-json", bad, "-slo", "bogus=1").CombinedOutput(); err == nil {
			t.Fatal("bad -slo spec accepted")
		}
	})

	t.Run("autotune-overload", func(t *testing.T) {
		// The BENCH_5 scenario: a deterministic virtual-time 2× overload
		// served static and then autotuned. The run must retune, beat the
		// static shed ledger, and pass its own SLO gate.
		dir := t.TempDir()
		path := filepath.Join(dir, "BENCH_autotune.json")
		out, err := exec.Command(bins["dlbench"], "-autotune", "-json", path).CombinedOutput()
		if err != nil {
			t.Fatalf("dlbench -autotune: %v\n%s", err, out)
		}
		s := string(out)
		for _, want := range []string{"static", "autotune", "retunes", "MET"} {
			if !strings.Contains(s, want) {
				t.Fatalf("-autotune output lacks %q:\n%s", want, s)
			}
		}
		res, err := metrics.ReadBenchResult(path)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters["control_retunes_total"] == 0 {
			t.Fatalf("the autotuned run never retuned: %v", res.Counters)
		}
		if res.Counters["static_shed_total"] == 0 {
			t.Fatalf("no static ledger in counters: %v", res.Counters)
		}
		// Self-comparison through the gate: scorecard met AND the autotuned
		// shed fraction below the static one.
		out, err = exec.Command(bins["benchdiff"], "-threshold", "1000", "-slo-gate", path, path).CombinedOutput()
		if err != nil || !strings.Contains(string(out), "SLO PASS") {
			t.Fatalf("slo-gate on autotune result: %v\n%s", err, out)
		}
	})

	t.Run("dlserve-chaos-flight", func(t *testing.T) {
		// A wedged decoder board under command timeouts: the server must
		// degrade to CPU decode, the flight recorder must dump, and the
		// trace endpoints must serve/flush a Chrome trace timeline.
		flightDir := t.TempDir()
		traceFile := filepath.Join(t.TempDir(), "trace.json")
		srv := exec.Command(bins["dlserve"],
			"-listen", "127.0.0.1:39472", "-batch", "4", "-size", "64",
			"-fault-fpga", "stuck-after=1", "-cmd-timeout", "50ms", "-fallback-after", "2",
			"-flight-dir", flightDir, "-trace-file", traceFile,
			"-metrics-addr", "127.0.0.1:39473")
		var srvOut bytes.Buffer
		srv.Stdout, srv.Stderr = &srvOut, &srvOut
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			_ = srv.Process.Kill()
			_, _ = srv.Process.Wait()
		}()
		var out []byte
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			out, err = exec.Command(bins["dlserve"], "-connect", "127.0.0.1:39472", "-n", "16").CombinedOutput()
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("client: %v\n%s\nserver:\n%s", err, out, srvOut.String())
		}

		// Degradation must have produced at least one flight dump.
		var dumps []string
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			dumps, _ = filepath.Glob(filepath.Join(flightDir, "flight-*.json"))
			if len(dumps) > 0 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if len(dumps) == 0 {
			t.Fatalf("no flight dump in %s\nserver:\n%s", flightDir, srvOut.String())
		}
		data, err := os.ReadFile(dumps[0])
		if err != nil || !strings.Contains(string(data), `"reason"`) {
			t.Fatalf("flight dump unreadable: %v\n%s", err, data)
		}

		// /trace.json serves a timeline next to /metrics.json.
		resp, err := http.Get("http://127.0.0.1:39473/trace.json")
		if err != nil {
			t.Fatalf("GET /trace.json: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "traceEvents") {
			t.Fatalf("/trace.json:\n%s", body)
		}

		// SIGINT flushes the trace file before exit.
		if err := srv.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		deadline = time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if data, err := os.ReadFile(traceFile); err == nil && strings.Contains(string(data), "traceEvents") {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("trace file never written\nserver:\n%s", srvOut.String())
	})
}
