package dlbooster

// Exec-level smoke tests: build each command once and drive its primary
// flow, so flag wiring and main-package glue stay working.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles every command into a temp dir once per test run.
func buildCmds(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"dlbench", "dlgen", "dltrain", "dlserve"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func TestCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("exec smoke tests in -short mode")
	}
	bins := buildCmds(t)

	t.Run("dlbench", func(t *testing.T) {
		out, err := exec.Command(bins["dlbench"], "-fig", "econ").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "cores replaced per FPGA") {
			t.Fatalf("unexpected output:\n%s", out)
		}
		out, err = exec.Command(bins["dlbench"], "-list").CombinedOutput()
		if err != nil || !strings.Contains(string(out), "fig7a") {
			t.Fatalf("dlbench -list: %v\n%s", err, out)
		}
		if out, err := exec.Command(bins["dlbench"], "-fig", "nope").CombinedOutput(); err == nil {
			t.Fatalf("unknown figure accepted:\n%s", out)
		}
	})

	t.Run("dlgen", func(t *testing.T) {
		dir := t.TempDir()
		lmdbPath := filepath.Join(dir, "snap.lmdb")
		out, err := exec.Command(bins["dlgen"],
			"-kind", "mnist", "-count", "6",
			"-out", filepath.Join(dir, "jpgs"),
			"-lmdb", lmdbPath, "-outw", "28", "-outh", "28").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		files, err := os.ReadDir(filepath.Join(dir, "jpgs"))
		if err != nil || len(files) != 6 {
			t.Fatalf("jpgs: %v, %d files", err, len(files))
		}
		if fi, err := os.Stat(lmdbPath); err != nil || fi.Size() == 0 {
			t.Fatalf("lmdb snapshot: %v", err)
		}
		if out, err := exec.Command(bins["dlgen"], "-kind", "bogus").CombinedOutput(); err == nil {
			t.Fatalf("bogus kind accepted:\n%s", out)
		}
	})

	t.Run("dltrain", func(t *testing.T) {
		out, err := exec.Command(bins["dltrain"],
			"-backend", "dlbooster", "-images", "64", "-batch", "16",
			"-gpus", "2", "-epochs", "2").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		s := string(out)
		if !strings.Contains(s, "hybrid mode") {
			t.Fatalf("epoch 2 did not use the cache:\n%s", s)
		}
		if !strings.Contains(s, "images trained:    128") {
			t.Fatalf("wrong image count:\n%s", s)
		}
	})

	t.Run("dlserve", func(t *testing.T) {
		// Server in background on a fixed local port, then the client.
		srv := exec.Command(bins["dlserve"], "-listen", "127.0.0.1:39471", "-batch", "4", "-size", "64")
		var srvOut bytes.Buffer
		srv.Stdout, srv.Stderr = &srvOut, &srvOut
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			_ = srv.Process.Kill()
			_, _ = srv.Process.Wait()
		}()
		// The client retries until the server listens.
		var out []byte
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			out, err = exec.Command(bins["dlserve"], "-connect", "127.0.0.1:39471", "-n", "16").CombinedOutput()
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("client: %v\n%s\nserver:\n%s", err, out, srvOut.String())
		}
		if !strings.Contains(string(out), "receipt→prediction latency") {
			t.Fatalf("client output:\n%s", out)
		}
	})
}
