package dlbooster

// control_doc_test pins docs/CONTROL.md to the code: the knob block,
// the config and limit surfaces, the decision actions, every control_*
// metric a running controller exports and the CLI flags must appear in
// the handbook, so the autotuner cannot grow surface the handbook
// doesn't describe.

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"dlbooster/internal/control"
	"dlbooster/internal/metrics"
)

// docPlant is a minimal in-memory control.Plant for driving a retune.
type docPlant struct{ k control.Knobs }

func (p *docPlant) Knobs() control.Knobs  { return p.k }
func (p *docPlant) Apply(k control.Knobs) { p.k = k }

// controlSnapshot drives one controller to an actual retune — a
// fabricated telemetry history missing its p99 objective — and returns
// the registry snapshot carrying the control_* instruments and the
// control_retune trace event.
func controlSnapshot(t *testing.T) *metrics.PipelineSnapshot {
	t.Helper()
	slo, err := metrics.ParseSLO("p99ms=50,window=1m")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	hist := metrics.NewHistory(16)
	plant := &docPlant{k: control.Knobs{BatchTimeout: 8 * time.Millisecond, QueueCap: 64}}
	ctl, err := control.New(plant, hist, control.Config{SLO: slo, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 1; i <= 4; i++ {
		hist.Record(&metrics.PipelineSnapshot{
			TakenAt:       t0.Add(time.Duration(i) * time.Second),
			UptimeSeconds: float64(i),
			Counters:      map[string]int64{"images_decoded_total": int64(100 * i)},
			Stages: map[string]metrics.Summary{
				metrics.StageBatchE2E: {Count: 100 * i, Mean: 80, P99: 100},
			},
		})
	}
	if d := ctl.Step(); d.Applied == nil {
		t.Fatalf("fixture never retuned: %s (%s)", d.Action, d.Reason)
	}
	return reg.Snapshot()
}

func TestControlHandbookPinned(t *testing.T) {
	docBytes, err := os.ReadFile("docs/CONTROL.md")
	if err != nil {
		t.Fatalf("the autotuner handbook is missing: %v", err)
	}
	doc := string(docBytes)

	var wanted []string
	// Every knob, config field and limit bound, by field name.
	for _, typ := range []reflect.Type{
		reflect.TypeOf(control.Knobs{}),
		reflect.TypeOf(control.Config{}),
		reflect.TypeOf(control.Limits{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			wanted = append(wanted, "`"+typ.Field(i).Name+"`")
		}
	}
	// The decision actions, by their event-detail codes.
	wanted = append(wanted,
		"`"+control.ActionHold+"`", "`"+control.ActionTightenLatency+"`",
		"`"+control.ActionGrowThroughput+"`", "`"+control.ActionRestoreBaseline+"`",
	)
	// The resolved-limit defaults the table narrates.
	base := control.Knobs{BatchTimeout: 8 * time.Millisecond, QueueCap: 64}
	lim := control.ResolveLimits(control.Limits{}, base, nil)
	wanted = append(wanted, fmt.Sprintf("%.1f", lim.MaxCPUShare), "100µs")
	// The plant surfaces and the CLI.
	wanted = append(wanted,
		"`core.Booster.SetBatchTimeout`", "`core.Booster.SetCPUShare`",
		"`fleet.Shard.SetQueueCap`",
		"dlserve -autotune", "dlbench -autotune", "BENCH_5",
		"`control_retune`",
	)
	for _, w := range wanted {
		if !strings.Contains(doc, w) {
			t.Errorf("docs/CONTROL.md does not mention %s", w)
		}
	}

	// Every control_* instrument a running controller actually exports —
	// pinned in both the handbook and the telemetry reference.
	metricsDoc, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	snap := controlSnapshot(t)
	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sawControlMetric := false
	for _, name := range names {
		if !strings.HasPrefix(name, "control_") {
			continue
		}
		sawControlMetric = true
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/CONTROL.md does not document exported metric `%s`", name)
		}
		if !strings.Contains(string(metricsDoc), "`"+name+"`") {
			t.Errorf("docs/METRICS.md does not document exported metric `%s`", name)
		}
	}
	if !sawControlMetric {
		t.Fatal("the controller exported no control_* metrics; the pin is vacuous")
	}
	retuned := false
	for _, e := range snap.Events {
		retuned = retuned || e.Name == "control_retune"
	}
	if !retuned {
		t.Fatal("the fixture's retune recorded no control_retune event")
	}
}
