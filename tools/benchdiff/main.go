// Command benchdiff compares two benchmark result files produced by
// `dlbench -json` and fails (exit 1) when the new run regressed past the
// threshold — the gate CI runs against the checked-in BENCH_0.json
// baseline, and the tool behind the repo's benchmark trajectory.
//
//	benchdiff BENCH_0.json BENCH_1.json
//	benchdiff -threshold 2.0 -floor-ms 1.0 base.json new.json
//	benchdiff -speedup 1.7 shards1.json shards2.json
//
// Throughput must stay above base/threshold; every stage p95 present in
// both files must stay below max(base p95, floor-ms) × threshold. The
// floor keeps sub-millisecond stages from flagging scheduler noise.
// Mismatched configurations or schema versions are an error (exit 2) —
// results are only ever compared like-for-like.
//
// With -speedup R the comparison inverts into a scaling gate: the
// second file must show at least R× the first file's throughput. The
// configs must match except for the shard count and per-shard rate —
// the gate CI runs over dlbench -shards 1 vs -shards 2.
//
// With -slo-gate the new file must carry an SLO scorecard (a `dlbench
// -slo` run) with every objective met; a missing scorecard or a spec
// mismatch against the baseline's scorecard is a misuse error (exit 2),
// and a violated objective fails the gate (exit 1). A result carrying
// the autotune scenario's static ledger (`dlbench -autotune`,
// static_shed_total in its counters) is additionally required to shed
// a smaller fraction of its offered load than the static config did —
// the adaptive controller must beat the config it replaces, not just
// meet the spec. The flag composes with either comparison mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dlbooster/internal/metrics"
)

func main() {
	threshold := flag.Float64("threshold", 2.0, "regression multiplier: new throughput ≥ base/threshold, new stage p95 ≤ max(base p95, floor-ms)×threshold")
	floorMs := flag.Float64("floor-ms", 1.0, "stage p95 floor in milliseconds, below which a base p95 is treated as this value")
	speedup := flag.Float64("speedup", 0, "scaling gate: require the second file's throughput ≥ this multiple of the first's (configs may differ only in shard count and rate; 0 = regression mode)")
	sloGate := flag.Bool("slo-gate", false, "SLO gate: require the second file to carry an SLO scorecard with every objective met")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 2.0] [-floor-ms 1.0] [-speedup 1.7] [-slo-gate] base.json new.json")
		os.Exit(2)
	}
	var err error
	if *speedup > 0 {
		err = runSpeedup(flag.Arg(0), flag.Arg(1), *speedup)
	} else {
		err = run(flag.Arg(0), flag.Arg(1), *threshold, *floorMs)
	}
	if err == nil && *sloGate {
		err = runSLOGate(flag.Arg(0), flag.Arg(1))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
}

// runSLOGate fails the diff when the new result's embedded scorecard —
// required to be present — has violated objectives.
func runSLOGate(basePath, curPath string) error {
	base, err := metrics.ReadBenchResult(basePath)
	if err != nil {
		return err
	}
	cur, err := metrics.ReadBenchResult(curPath)
	if err != nil {
		return err
	}
	regs, err := metrics.CompareBenchSLO(base, cur)
	if err != nil {
		return err
	}
	fmt.Printf("benchdiff: SLO gate on %s:\n", curPath)
	fmt.Print(indent(cur.SLO.Report()))
	if len(regs) > 0 {
		fmt.Printf("benchdiff: FAIL — %d SLO violation(s):\n", len(regs))
		for _, r := range regs {
			fmt.Printf("  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: SLO PASS")
	return nil
}

// indent prefixes every non-empty line with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "  " + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// runSpeedup is the scaling gate: cur must reach ratio× base's
// throughput, configs matching up to shard count and per-shard rate.
func runSpeedup(basePath, curPath string, ratio float64) error {
	base, err := metrics.ReadBenchResult(basePath)
	if err != nil {
		return err
	}
	cur, err := metrics.ReadBenchResult(curPath)
	if err != nil {
		return err
	}
	reg, err := metrics.CompareBenchSpeedup(base, cur, ratio)
	if err != nil {
		return err
	}
	got := 0.0
	if base.Throughput > 0 {
		got = cur.Throughput / base.Throughput
	}
	fmt.Printf("benchdiff: %s (%d shards) vs %s (%d shards), speedup gate %.2fx\n",
		basePath, maxShards(base), curPath, maxShards(cur), ratio)
	fmt.Printf("  throughput: %.1f → %.1f images/s (%.2fx)\n", base.Throughput, cur.Throughput, got)
	if reg != nil {
		fmt.Printf("benchdiff: FAIL — %s\n", reg)
		os.Exit(1)
	}
	fmt.Println("benchdiff: PASS")
	return nil
}

// maxShards renders a result's shard count, treating the classic
// single-pipeline config (Shards 0) as one shard.
func maxShards(r *metrics.BenchResult) int {
	if r.Config.Shards > 0 {
		return r.Config.Shards
	}
	return 1
}

func run(basePath, newPath string, threshold, floorMs float64) error {
	base, err := metrics.ReadBenchResult(basePath)
	if err != nil {
		return err
	}
	cur, err := metrics.ReadBenchResult(newPath)
	if err != nil {
		return err
	}
	regs, err := metrics.CompareBenchResults(base, cur, threshold, floorMs)
	if err != nil {
		return err
	}

	fmt.Printf("benchdiff: %s (%s) vs %s (%s), threshold %.2fx\n",
		basePath, short(base.GitSHA), newPath, short(cur.GitSHA), threshold)
	fmt.Printf("  throughput: %.1f → %.1f images/s (%+.1f%%)\n",
		base.Throughput, cur.Throughput, pct(base.Throughput, cur.Throughput))
	for _, stage := range sortedStages(base, cur) {
		bs, bok := base.Stages[stage]
		cs, cok := cur.Stages[stage]
		if !bok || !cok || bs.Count == 0 || cs.Count == 0 {
			continue
		}
		fmt.Printf("  %-16s p95 %8.3fms → %8.3fms (%+.1f%%)\n", stage, bs.P95, cs.P95, pct(bs.P95, cs.P95))
	}

	if len(regs) == 0 {
		fmt.Println("benchdiff: PASS")
		return nil
	}
	fmt.Printf("benchdiff: FAIL — %d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Printf("  %s\n", r)
	}
	os.Exit(1)
	return nil
}

// sortedStages merges the stage names of both results, sorted.
func sortedStages(a, b *metrics.BenchResult) []string {
	seen := make(map[string]bool)
	for s := range a.Stages {
		seen[s] = true
	}
	for s := range b.Stages {
		seen[s] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// pct is the relative change from base to cur in percent.
func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// short truncates a git SHA for display.
func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
