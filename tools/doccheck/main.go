// Command doccheck fails when an exported symbol in the given package
// directories lacks a doc comment. It keeps the instrumented packages'
// godoc complete — docs/METRICS.md and docs/API.md reference those
// symbols by name, and an undocumented export is where the references
// start to rot. CI runs it over the observability surface:
//
//	go run ./tools/doccheck internal/metrics internal/core internal/hugepage
//
// Test files are skipped. Methods on unexported receiver types are
// skipped too (they never surface in godoc). Exit status 1 reports the
// offending file:line symbol list.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbols lack doc comments\n", bad)
		os.Exit(1)
	}
}

// check parses every non-test Go file in dir and returns one
// "file:line: symbol" entry per undocumented exported declaration.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv, ok := receiverName(d); ok {
						if !ast.IsExported(recv) {
							continue
						}
						report(d.Pos(), fmt.Sprintf("method %s.%s", recv, d.Name.Name))
					} else {
						report(d.Pos(), "func "+d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // block comment covers every spec
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type "+s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, name := range s.Names {
								if name.IsExported() {
									report(name.Pos(), tokenKind(d.Tok)+" "+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// receiverName returns the base type name of a method receiver.
func receiverName(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name, true
		default:
			return "", true
		}
	}
}

// tokenKind renders the declaration keyword for the report line.
func tokenKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
