// Command genjpegfixtures (re)generates the checked-in DRI test fixtures
// under internal/jpeg/testdata: restart-marker-encoded JPEGs in the three
// production layouts, plus truncated/corrupted-segment seed files for the
// FuzzDecodeScaledInto corpus. The images are pure deterministic
// functions of their geometry (no RNG, no time), so regeneration is
// byte-stable across runs and hosts as long as the encoder is.
//
// Run from the repository root:
//
//	go run ./tools/genjpegfixtures
package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"dlbooster/internal/jpeg"
	"dlbooster/internal/pix"
)

// synthImage renders a deterministic smooth field — low-frequency enough
// to compress like a photo, varied enough that every restart segment
// carries distinct data.
func synthImage(w, h, c int, phase float64) *pix.Image {
	img := pix.New(w, h, c)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			for ch := 0; ch < c; ch++ {
				v := 128 +
					60*math.Sin(2*math.Pi*(3*fx+phase)+float64(ch)) +
					50*math.Cos(2*math.Pi*(2*fy-phase)+2*float64(ch)) +
					15*math.Sin(2*math.Pi*(7*fx*fy))
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				img.Pix[(y*w+x)*c+ch] = byte(v)
			}
		}
	}
	return img
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genjpegfixtures:", err)
		os.Exit(1)
	}
}

func writeFile(path string, data []byte) {
	must(os.MkdirAll(filepath.Dir(path), 0o755))
	must(os.WriteFile(path, data, 0o644))
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
}

// fuzzSeed wraps raw bytes in the `go test fuzz v1` corpus format.
func fuzzSeed(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

func main() {
	driDir := filepath.Join("internal", "jpeg", "testdata", "dri")
	corpusDir := filepath.Join("internal", "jpeg", "testdata", "fuzz", "FuzzDecodeScaledInto")

	enc := func(img *pix.Image, opt jpeg.EncodeOptions) []byte {
		data, err := jpeg.Encode(img, opt)
		must(err)
		return data
	}
	d420 := enc(synthImage(512, 384, 3, 0.13), jpeg.EncodeOptions{Quality: 88, Subsample420: true, RestartInterval: 8})
	d422 := enc(synthImage(480, 320, 3, 0.47), jpeg.EncodeOptions{Quality: 90, Subsample422: true, RestartInterval: 12})
	dGray := enc(synthImage(320, 320, 1, 0.71), jpeg.EncodeOptions{Quality: 85, RestartInterval: 16})
	writeFile(filepath.Join(driDir, "dri-420.jpg"), d420)
	writeFile(filepath.Join(driDir, "dri-422.jpg"), d422)
	writeFile(filepath.Join(driDir, "dri-gray.jpg"), dGray)

	// Truncated/corrupted-segment corpus seeds: the shapes the parallel
	// segment scanner and its sequential fallback must survive.
	rst3 := bytes.Index(d420, []byte{0xFF, 0xD3})
	if rst3 < 0 {
		must(fmt.Errorf("no RST3 marker in dri-420 fixture"))
	}
	writeFile(filepath.Join(corpusDir, "dri-420-truncated-mid-segment"), fuzzSeed(d420[:len(d420)*55/100]))
	writeFile(filepath.Join(corpusDir, "dri-420-truncated-after-rst3"), fuzzSeed(d420[:rst3+2]))
	outOfSeq := append([]byte(nil), d422...)
	if i := bytes.Index(outOfSeq, []byte{0xFF, 0xD0}); i >= 0 {
		outOfSeq[i+1] = 0xD6 // first restart marker out of sequence
	}
	writeFile(filepath.Join(corpusDir, "dri-422-marker-out-of-sequence"), fuzzSeed(outOfSeq))
	writeFile(filepath.Join(corpusDir, "dri-gray-truncated-tail"), fuzzSeed(dGray[:len(dGray)-7]))
}
