package dlbooster

// Cross-layer integration tests: the full functional stack (disk → FPGA
// decode → HugePage batches → Dispatcher → GPU engines) driven end to
// end, including the online-inference workflow over a real TCP socket —
// the complete Figure 1 loop of the paper.

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"dlbooster/internal/audio"
	"dlbooster/internal/backends"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/lmdb"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
	"dlbooster/internal/queue"
)

// TestEndToEndTrainingAcrossBackends trains the same corpus through all
// four backends on two GPUs and requires identical training digests —
// the full-stack form of the paper's §4.2 interchangeability claim.
func TestEndToEndTrainingAcrossBackends(t *testing.T) {
	const (
		images = 64
		batch  = 16
		edge   = 28
		gpus   = 2
	)
	spec := dataset.MNISTLike(images)
	disk := nvme.New(nvme.Config{})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		t.Fatal(err)
	}
	db := lmdb.New()
	if err := dataset.ConvertToLMDB(spec, db, edge, edge); err != nil {
		t.Fatal(err)
	}
	nvDev, err := gpu.NewDevice(9, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	defer nvDev.Close()

	builders := map[string]func() (backends.Backend, error){
		"dlbooster": func() (backends.Backend, error) {
			return backends.NewDLBooster(core.Config{BatchSize: batch, OutW: edge, OutH: edge, Channels: 1, PoolBatches: 4, Source: disk, FPGADevices: 2})
		},
		"cpu": func() (backends.Backend, error) {
			return backends.NewCPU(backends.CPUConfig{BatchSize: batch, OutW: edge, OutH: edge, Channels: 1, PoolBatches: 4, Workers: 2, Source: disk})
		},
		"lmdb": func() (backends.Backend, error) {
			return backends.NewLMDB(backends.LMDBConfig{BatchSize: batch, OutW: edge, OutH: edge, Channels: 1, PoolBatches: 4, DB: db})
		},
		"nvjpeg": func() (backends.Backend, error) {
			return backends.NewNvJPEG(backends.NvJPEGConfig{BatchSize: batch, OutW: edge, OutH: edge, Channels: 1, PoolBatches: 4, Device: nvDev, Source: disk})
		},
	}
	digests := map[string]uint64{}
	for name, build := range builders {
		backend, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		solvers := make([]*core.Solver, gpus)
		devs := make([]*gpu.Device, gpus)
		for g := range solvers {
			devs[g], err = gpu.NewDevice(g, 1<<26)
			if err != nil {
				t.Fatal(err)
			}
			solvers[g], err = core.NewSolver(devs[g], 2, batch*edge*edge)
			if err != nil {
				t.Fatal(err)
			}
		}
		disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, solvers, core.DispatcherConfig{})
		if err != nil {
			t.Fatal(err)
		}
		trainer, err := engine.NewTrainer(engine.TrainerConfig{Profile: perf.LeNet5, Solvers: solvers})
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 2)
		go func() { errc <- disp.Run() }()
		go func() {
			col, err := core.LoadFromDisk(disk, func(string, int) int { return 0 })
			if err != nil {
				errc <- err
				return
			}
			if err := backend.RunEpoch(col); err != nil {
				errc <- err
				return
			}
			backend.CloseBatches()
			errc <- nil
		}()
		st, err := trainer.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if st.Images != images {
			t.Fatalf("%s: trained %d images", name, st.Images)
		}
		digests[name] = st.LossProxy
		backend.Close()
		for _, d := range devs {
			d.Close()
		}
	}
	want := digests["dlbooster"]
	for name, d := range digests {
		if d != want {
			t.Fatalf("digest mismatch: %s=%x dlbooster=%x", name, d, want)
		}
	}
}

// TestEndToEndInferenceOverTCP runs the Figure 1 workflow over a real
// socket: a client sends JPEG frames, the server pipeline decodes on the
// simulated FPGA, infers on the simulated GPU, and returns predictions.
func TestEndToEndInferenceOverTCP(t *testing.T) {
	const (
		batch = 4
		n     = 16
		edge  = 64
	)
	backend, err := backends.NewDLBooster(core.Config{
		BatchSize: batch, OutW: edge, OutH: edge, Channels: 3, PoolBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	dev, err := gpu.NewDevice(0, 1<<27)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batch*edge*edge*3)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, []*core.Solver{solver}, core.DispatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	items := queue.New[core.Item](64)
	type pred struct {
		seq, label int
		latency    time.Duration
	}
	preds := make(chan pred, n)
	lat := &metrics.Histogram{}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 100, Latency: lat,
		Emit: func(p engine.Prediction) {
			preds <- pred{seq: p.Seq, label: p.Label, latency: p.Latency}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = backend.RunEpoch(core.CollectorFromQueue(items))
		backend.CloseBatches()
	}()
	go func() { _ = disp.Run() }()
	go func() { _, _ = inf.Run() }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Server: read length-prefixed JPEG frames, push items; reply with
	// predictions as they emerge.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() { // reply path
			for p := range preds {
				var buf [16]byte
				binary.BigEndian.PutUint32(buf[0:], uint32(p.seq))
				binary.BigEndian.PutUint32(buf[4:], uint32(p.label))
				binary.BigEndian.PutUint64(buf[8:], uint64(p.latency))
				if _, err := conn.Write(buf[:]); err != nil {
					return
				}
			}
		}()
		seq := 0
		var hdr [4]byte
		for {
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return
			}
			payload := make([]byte, binary.BigEndian.Uint32(hdr[:]))
			if _, err := io.ReadFull(conn, payload); err != nil {
				return
			}
			if err := items.Push(core.Item{
				Ref:  fpga.DataRef{Inline: payload},
				Meta: core.ItemMeta{Seq: seq, ReceivedAt: time.Now()},
			}); err != nil {
				return
			}
			seq++
		}
	}()

	// Client.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	spec := dataset.ILSVRCLike(n)
	go func() {
		var hdr [4]byte
		for i := 0; i < n; i++ {
			data, err := spec.JPEG(i)
			if err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
			if _, err := conn.Write(hdr[:]); err != nil {
				return
			}
			if _, err := conn.Write(data); err != nil {
				return
			}
		}
	}()
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	seen := map[int]bool{}
	var resp [16]byte
	for len(seen) < n {
		if _, err := io.ReadFull(conn, resp[:]); err != nil {
			t.Fatalf("after %d predictions: %v", len(seen), err)
		}
		seq := int(binary.BigEndian.Uint32(resp[0:]))
		label := int(binary.BigEndian.Uint32(resp[4:]))
		latency := time.Duration(binary.BigEndian.Uint64(resp[8:]))
		if seen[seq] {
			t.Fatalf("duplicate prediction for %d", seq)
		}
		seen[seq] = true
		if label < 0 || label >= 100 {
			t.Fatalf("label %d out of range", label)
		}
		if latency <= 0 || latency > time.Minute {
			t.Fatalf("implausible latency %v", latency)
		}
	}
	if lat.Count() != n {
		t.Fatalf("latency samples = %d", lat.Count())
	}
	items.Close()
}

// TestMirrorSwapEndToEnd runs the speech workload through the identical
// backend pipeline by loading a different decoder image (§3.1).
func TestMirrorSwapEndToEnd(t *testing.T) {
	const clips = 6
	b, err := core.New(core.Config{
		BatchSize: 3, OutW: 32, OutH: 32, Channels: 1, PoolBatches: 2,
		Mirror: "speech",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	items := make([]core.Item, clips)
	for i := range items {
		wav, err := audio.EncodeWAV(audio.Synth(int64(i), 16000, 32000))
		if err != nil {
			t.Fatal(err)
		}
		items[i] = core.Item{Ref: fpga.DataRef{Inline: wav}, Meta: core.ItemMeta{Seq: i}}
	}
	done := make(chan int, 1)
	go func() {
		total := 0
		for {
			batch, err := b.Batches().Pop()
			if err != nil {
				done <- total
				return
			}
			total += batch.ValidCount()
			_ = b.RecycleBatch(batch)
		}
	}()
	if err := b.RunEpoch(core.CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	if got := <-done; got != clips {
		t.Fatalf("decoded %d clips, want %d", got, clips)
	}
}
