// Quickstart: the smallest complete DLBooster pipeline.
//
// It builds the backend (HugePage pool + simulated FPGA decoder with the
// JPEG mirror), feeds it a handful of encoded images, and drains decoded,
// batched rasters from the Full queue — the host side of paper Figure 3
// in ~60 lines of application code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
)

func main() {
	// 1. A DLBooster backend: 4 images per batch, decoded and resized
	//    to 64×64 RGB by the FPGA decoder.
	booster, err := core.New(core.Config{
		BatchSize: 4,
		OutW:      64, OutH: 64, Channels: 3,
		PoolBatches: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer booster.Close()

	// 2. Ten synthetic photos, JPEG-encoded — the on-wire form clients
	//    send in the paper's online workflow.
	spec := dataset.ILSVRCLike(10)
	items := make([]core.Item, spec.Count)
	for i := range items {
		data, err := spec.JPEG(i)
		if err != nil {
			log.Fatal(err)
		}
		items[i] = core.Item{
			Ref:  fpga.DataRef{Inline: data},
			Meta: core.ItemMeta{Label: spec.Label(i), Seq: i},
		}
	}

	// 3. A consumer draining the Full_Batch_Queue. In the full system
	//    this is the Dispatcher feeding GPUs; here we just look at the
	//    decoded bytes and recycle the buffers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			batch, err := booster.Batches().Pop()
			if err != nil {
				return
			}
			fmt.Printf("batch %d: %d images of %dx%dx%d (%d bytes each)\n",
				batch.Seq, batch.Images, batch.W, batch.H, batch.C, batch.ImageBytes())
			for i := 0; i < batch.Images; i++ {
				px := batch.Image(i)
				fmt.Printf("  image seq=%d label=%d valid=%v first-pixels=%v\n",
					batch.Metas[i].Seq, batch.Metas[i].Label, batch.Valid[i], px[:6])
			}
			if err := booster.RecycleBatch(batch); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// 4. Run one epoch through the FPGA decoder (Algorithm 1).
	if err := booster.RunEpoch(core.CollectorFromItems(items)); err != nil {
		log.Fatal(err)
	}
	booster.CloseBatches()
	<-done

	fmt.Printf("\ndecoded %d images, %d errors, on the %q decoder mirror\n",
		booster.Images(), booster.DecodeErrors(), booster.Device().Mirror())
	parser, huff, idct, resize := booster.Device().Stats()
	fmt.Printf("FPGA stage jobs: parser=%d huffman=%d idct=%d resize=%d\n",
		parser.Jobs, huff.Jobs, idct.Jobs, resize.Jobs)
}
