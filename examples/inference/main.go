// Inference example: the online workflow of paper §5.3 — clients
// streaming JPEGs over a (simulated) 40 Gbps fabric into the DLBooster
// pipeline, with per-image receipt→prediction latency, the Figure 8
// metric. For the same flow over real TCP sockets, see cmd/dlserve.
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"time"

	"dlbooster/internal/backends"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nic"
	"dlbooster/internal/perf"
)

const (
	clients   = 5 // the paper's client count
	requests  = 96
	batchSize = 8
	outEdge   = 224
)

func main() {
	// Client payloads: the paper's 500×375 colour JPEGs.
	spec := dataset.ILSVRCLike(16)
	payloads := make([][]byte, spec.Count)
	for i := range payloads {
		data, err := spec.JPEG(i)
		if err != nil {
			log.Fatal(err)
		}
		payloads[i] = data
	}

	// The 40 Gbps fabric with 5 closed-loop clients.
	fabric := nic.New(nic.Config{BandwidthBits: perf.NICBandwidthBits, RxQueueCap: 64})
	group, err := nic.StartClients(fabric, clients, payloads)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		fabric.Close()
		group.Stop()
	}()

	// DLBooster backend + one GPU inference engine.
	backend, err := backends.NewDLBooster(core.Config{
		BatchSize: batchSize, OutW: outEdge, OutH: outEdge, Channels: 3,
		PoolBatches: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()
	dev, err := gpu.NewDevice(0, 1<<31)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batchSize*outEdge*outEdge*3)
	if err != nil {
		log.Fatal(err)
	}
	disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, []*core.Solver{solver}, core.DispatcherConfig{})
	if err != nil {
		log.Fatal(err)
	}
	lat := &metrics.Histogram{}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 1000, Latency: lat,
	})
	if err != nil {
		log.Fatal(err)
	}

	errc := make(chan error, 2)
	go func() { errc <- disp.Run() }()
	go func() {
		col, err := core.LoadFromNet(fabric, requests)
		if err != nil {
			errc <- err
			return
		}
		if err := backend.RunEpoch(col); err != nil {
			errc <- err
			return
		}
		backend.CloseBatches()
		errc <- nil
	}()

	start := time.Now()
	st, err := inf.Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
	}

	elapsed := time.Since(start)
	fmt.Printf("served %d images (%d batches of %d) from %d clients in %v\n",
		st.Images, st.Batches, batchSize, clients, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f images/s (functional mode; calibrated shapes come from cmd/dlbench)\n",
		float64(st.Images)/elapsed.Seconds())
	s := lat.Summarize()
	fmt.Printf("receipt→prediction latency: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		s.P50, s.P95, s.P99, s.Max)
	fmt.Printf("decode errors: %d\n", backend.DecodeErrors())
}
