// Economics example: the §5.4 cost analysis — what replacing decode
// cores with an FPGA is worth to users and providers.
//
//	go run ./examples/economics
package main

import (
	"fmt"

	"dlbooster/internal/econ"
	"dlbooster/internal/perf"
)

func main() {
	fmt.Print(econ.Analyze(perf.AlexNet.EpochImages).Report())

	// What the freed cores mean at fleet scale: per the paper, a
	// well-optimised FPGA decoder replaces 30 cores of JPEG decode.
	fmt.Println()
	for _, servers := range []int{1, 10, 100} {
		a := econ.Analyze(0)
		fmt.Printf("%4d server(s) with one FPGA each: %4d cores freed, $%8.0f/yr resale revenue\n",
			servers, servers*a.CoresReplaced, float64(servers)*a.AnnualRevenuePerFPGA)
	}
}
