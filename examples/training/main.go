// Training example: the offline-training workflow of paper §5.2 run
// functionally, comparing DLBooster against the CPU-based baseline on
// the same corpus — and proving they feed the engine identical data
// (same deterministic loss digest) while spending very different host
// effort.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"time"

	"dlbooster/internal/backends"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
)

const (
	images  = 512
	batch   = 64
	gpus    = 2
	outEdge = 28
)

func main() {
	spec := dataset.MNISTLike(images)
	disk := nvme.New(nvme.Config{})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		log.Fatal(err)
	}

	var digests []uint64
	for _, which := range []string{"dlbooster", "cpu"} {
		digest, elapsed, busy := trainOnce(which, spec, disk)
		digests = append(digests, digest)
		fmt.Printf("%-10s trained %d images on %d GPUs in %v; host busy: %v\n",
			which, images, gpus, elapsed.Round(time.Millisecond), busy)
	}
	if digests[0] == digests[1] {
		fmt.Printf("\nloss digests match (%016x): the backends are interchangeable,\n", digests[0])
		fmt.Println("exactly the pluggability §4.2 claims — the engine cannot tell them apart.")
	} else {
		log.Fatalf("digests differ: %x vs %x", digests[0], digests[1])
	}
}

func trainOnce(which string, spec dataset.Spec, disk *nvme.Device) (uint64, time.Duration, map[string]float64) {
	busy := metrics.NewBusyTracker()
	var backend backends.Backend
	switch which {
	case "dlbooster":
		b, err := backends.NewDLBooster(core.Config{
			BatchSize: batch, OutW: outEdge, OutH: outEdge, Channels: 1,
			PoolBatches: 8, Source: disk,
		})
		if err != nil {
			log.Fatal(err)
		}
		backend = b
	case "cpu":
		b, err := backends.NewCPU(backends.CPUConfig{
			BatchSize: batch, OutW: outEdge, OutH: outEdge, Channels: 1,
			PoolBatches: 8, Workers: 2, Source: disk, Busy: busy,
		})
		if err != nil {
			log.Fatal(err)
		}
		backend = b
	}
	defer backend.Close()

	solvers := make([]*core.Solver, gpus)
	for g := range solvers {
		dev, err := gpu.NewDevice(g, 1<<28)
		if err != nil {
			log.Fatal(err)
		}
		defer dev.Close()
		s, err := core.NewSolver(dev, 2, batch*outEdge*outEdge)
		if err != nil {
			log.Fatal(err)
		}
		solvers[g] = s
	}
	disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, solvers, core.DispatcherConfig{})
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := engine.NewTrainer(engine.TrainerConfig{Profile: perf.LeNet5, Solvers: solvers})
	if err != nil {
		log.Fatal(err)
	}

	errc := make(chan error, 2)
	go func() { errc <- disp.Run() }()
	go func() {
		col, err := core.LoadFromDisk(disk, func(name string, i int) int { return spec.Label(i) })
		if err != nil {
			errc <- err
			return
		}
		if err := backend.RunEpoch(col); err != nil {
			errc <- err
			return
		}
		backend.CloseBatches()
		errc <- nil
	}()
	st, err := trainer.Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
	}
	if st.Images != images {
		log.Fatalf("%s: trained %d images, want %d", which, st.Images, images)
	}
	return st.LossProxy, st.Elapsed, busy.Cores(st.Elapsed.Seconds())
}
