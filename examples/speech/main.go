// Speech example: the pluggable-mirror story of paper §3.1 — the same
// DLBooster backend, host bridger and batch pipeline, with the "speech"
// decoder image downloaded to the FPGA instead of "jpeg". WAV clips go
// in; fixed-geometry log-DCT spectrograms come out of the very same
// Full_Batch_Queue the image workloads use.
//
//	go run ./examples/speech
package main

import (
	"fmt"
	"log"

	"dlbooster/internal/audio"
	"dlbooster/internal/core"
	"dlbooster/internal/fpga"
)

const (
	clips      = 12
	batchSize  = 4
	sampleRate = 16000
	specEdge   = 64 // resizer output: 64×64 spectrogram patches
)

func main() {
	// The only change from the quickstart: Mirror: "speech".
	booster, err := core.New(core.Config{
		BatchSize: batchSize,
		OutW:      specEdge, OutH: specEdge, Channels: 1,
		PoolBatches: 4,
		Mirror:      "speech",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer booster.Close()

	items := make([]core.Item, clips)
	for i := range items {
		clip := audio.Synth(int64(i), sampleRate, 2*sampleRate) // 2 s each
		wav, err := audio.EncodeWAV(clip)
		if err != nil {
			log.Fatal(err)
		}
		items[i] = core.Item{
			Ref:  fpga.DataRef{Inline: wav},
			Meta: core.ItemMeta{Seq: i, Label: i % 10},
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			batch, err := booster.Batches().Pop()
			if err != nil {
				return
			}
			fmt.Printf("batch %d: %d spectrograms of %dx%d\n", batch.Seq, batch.Images, batch.W, batch.H)
			for i := 0; i < batch.Images; i++ {
				px := batch.Image(i)
				// Report per-clip spectral energy, a quick sanity signal.
				var sum int
				for _, v := range px {
					sum += int(v)
				}
				fmt.Printf("  clip seq=%d label=%d valid=%v mean-energy=%d/255\n",
					batch.Metas[i].Seq, batch.Metas[i].Label, batch.Valid[i], sum/len(px))
			}
			if err := booster.RecycleBatch(batch); err != nil {
				log.Fatal(err)
			}
		}
	}()

	if err := booster.RunEpoch(core.CollectorFromItems(items)); err != nil {
		log.Fatal(err)
	}
	booster.CloseBatches()
	<-done

	fmt.Printf("\nprocessed %d clips with %d errors on the %q mirror —\n",
		booster.Images(), booster.DecodeErrors(), booster.Device().Mirror())
	fmt.Println("same pipeline, different decoder image (§3.1's pluggability).")
}
