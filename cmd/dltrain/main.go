// Command dltrain runs the functional offline-training workflow
// end-to-end: synthetic corpus on a simulated NVMe disk → preprocessing
// backend (DLBooster's FPGA pipeline or a baseline) → Dispatcher →
// data-parallel training engine on simulated GPUs. Real bytes, real
// JPEG decode, real goroutine pipeline — wall-clock mode of the repo.
//
//	dltrain -backend dlbooster -images 2000 -epochs 3 -gpus 2
//	dltrain -backend cpu -workers 4
//	dltrain -backend lmdb
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dlbooster/internal/backends"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/gpu"
	"dlbooster/internal/lmdb"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
)

func main() {
	backendName := flag.String("backend", "dlbooster", "dlbooster, cpu, or lmdb")
	images := flag.Int("images", 2000, "corpus size")
	batch := flag.Int("batch", 64, "batch size per GPU")
	gpus := flag.Int("gpus", 1, "data-parallel GPUs")
	epochs := flag.Int("epochs", 2, "training epochs")
	workers := flag.Int("workers", perf.DefaultCPUDecodeThreads, "decode threads for -backend cpu")
	outSize := flag.Int("size", 28, "decoder output edge (pixels)")
	pace := flag.Bool("pace", false, "pace GPU compute with the calibrated LeNet-5 rate")
	cacheMB := flag.Int("cache-mb", 0, "RAM tier of the decoded-tensor ReplayCache in MiB (0 = auto-size to the corpus)")
	cacheSpillMB := flag.Int("cache-spill-mb", 0, "NVMe spill tier of the ReplayCache in MiB (0 = RAM tier only; overflow drops the cache)")
	cacheCompress := flag.Bool("cache-compress", false, "flate-compress tensors spilled to the NVMe tier")
	flag.Parse()

	if err := run(*backendName, *images, *batch, *gpus, *epochs, *workers, *outSize, *pace, *cacheMB, *cacheSpillMB, *cacheCompress); err != nil {
		fmt.Fprintf(os.Stderr, "dltrain: %v\n", err)
		os.Exit(1)
	}
}

func run(backendName string, images, batch, gpus, epochs, workers, outSize int, pace bool, cacheMB, cacheSpillMB int, cacheCompress bool) error {
	spec := dataset.MNISTLike(images)
	fmt.Printf("generating %d-image %s corpus onto simulated NVMe...\n", images, spec.Name)
	disk := nvme.New(nvme.Config{ReadBandwidth: perf.NVMeReadBandwidth, ReadLatency: time.Duration(perf.NVMeReadLatency * float64(time.Second))})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		return err
	}

	busy := metrics.NewBusyTracker()
	var backend backends.Backend
	// The RAM tier auto-sizes to hold the whole decoded corpus unless
	// -cache-mb pins it smaller; -cache-spill-mb then adds an NVMe spill
	// tier (its own paced device, so spill traffic doesn't contend with
	// the corpus disk's manifest) instead of dropping on overflow.
	cacheCfg := core.CacheConfig{
		RAMBytes: int64(images*outSize*outSize) + 1<<20,
		Compress: cacheCompress,
	}
	if cacheMB > 0 {
		cacheCfg.RAMBytes = int64(cacheMB) << 20
	}
	if cacheSpillMB > 0 {
		cacheCfg.Spill = nvme.New(nvme.Config{
			ReadBandwidth:  perf.NVMeReadBandwidth,
			ReadLatency:    time.Duration(perf.NVMeReadLatency * float64(time.Second)),
			WriteBandwidth: perf.NVMeWriteBandwidth,
			WriteLatency:   time.Duration(perf.NVMeWriteLatency * float64(time.Second)),
		})
		cacheCfg.SpillBytes = int64(cacheSpillMB) << 20
	}
	switch backendName {
	case "dlbooster":
		b, err := backends.NewDLBooster(core.Config{
			BatchSize: batch, OutW: outSize, OutH: outSize, Channels: 1,
			PoolBatches: 8, Source: disk, Cache: cacheCfg,
		})
		if err != nil {
			return err
		}
		backend = b
	case "cpu":
		b, err := backends.NewCPU(backends.CPUConfig{
			BatchSize: batch, OutW: outSize, OutH: outSize, Channels: 1,
			PoolBatches: 8, Workers: workers, Source: disk, Busy: busy,
			Cache: cacheCfg,
		})
		if err != nil {
			return err
		}
		backend = b
	case "lmdb":
		fmt.Println("running offline conversion (the cost online backends avoid)...")
		convStart := time.Now()
		db := lmdb.New()
		if err := dataset.ConvertToLMDB(spec, db, outSize, outSize); err != nil {
			return err
		}
		fmt.Printf("offline conversion: %d records in %v\n", images, time.Since(convStart).Round(time.Millisecond))
		b, err := backends.NewLMDB(backends.LMDBConfig{
			BatchSize: batch, OutW: outSize, OutH: outSize, Channels: 1,
			PoolBatches: 8, DB: db, Busy: busy, Cache: cacheCfg,
		})
		if err != nil {
			return err
		}
		backend = b
	default:
		return fmt.Errorf("unknown backend %q", backendName)
	}
	defer backend.Close()

	solvers := make([]*core.Solver, gpus)
	for g := 0; g < gpus; g++ {
		dev, err := gpu.NewDevice(g, 1<<30)
		if err != nil {
			return err
		}
		defer dev.Close()
		s, err := core.NewSolver(dev, 2, batch*outSize*outSize)
		if err != nil {
			return err
		}
		solvers[g] = s
	}
	disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, solvers, core.DispatcherConfig{})
	if err != nil {
		return err
	}
	trainer, err := engine.NewTrainer(engine.TrainerConfig{
		Profile: perf.LeNet5, Solvers: solvers, PaceCompute: pace, Busy: busy,
	})
	if err != nil {
		return err
	}

	errc := make(chan error, 2)
	go func() { errc <- disp.Run() }()
	go func() {
		defer backend.CloseBatches()
		for e := 0; e < epochs; e++ {
			start := time.Now()
			if e > 0 && backend.CacheComplete() && backend.CacheReplayable() {
				if err := backend.ReplayCache(); err != nil {
					errc <- err
					return
				}
				cs := backend.Cache().Stats()
				fmt.Printf("epoch %d: served from the replay cache in %v (hybrid mode; %d RAM + %d spilled batches, %d re-decoded)\n",
					e+1, time.Since(start).Round(time.Millisecond), cs.RAMResident, cs.SpillResident, cs.Dropped)
				continue
			}
			col, err := core.LoadFromDisk(disk, func(name string, i int) int { return spec.Label(i) })
			if err != nil {
				errc <- err
				return
			}
			if err := backend.RunEpoch(col); err != nil {
				errc <- err
				return
			}
			fmt.Printf("epoch %d: decoded online in %v\n", e+1, time.Since(start).Round(time.Millisecond))
		}
		errc <- nil
	}()

	st, err := trainer.Run()
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			return err
		}
	}

	fmt.Printf("\nbackend=%s gpus=%d batch=%d epochs=%d\n", backend.Name(), gpus, batch, epochs)
	fmt.Printf("  images trained:    %d (skipped %d bad)\n", st.Images, st.SkippedBad)
	fmt.Printf("  iterations:        %d\n", st.Iterations)
	fmt.Printf("  wall time:         %v\n", st.Elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput:        %.0f images/s\n", float64(st.Images)/st.Elapsed.Seconds())
	fmt.Printf("  loss proxy:        %016x (deterministic digest)\n", st.LossProxy)
	fmt.Printf("  decode errors:     %d\n", backend.DecodeErrors())
	if cores := busy.Cores(st.Elapsed.Seconds()); len(cores) > 0 {
		fmt.Printf("  host busy cores:   %v\n", cores)
	}
	return nil
}
