// The -shards serving path: N independent Booster shards — each with
// its own decoder boards, HugePage arena, dispatcher, batch engine and
// admission-controlled ingest queue — behind the internal/fleet router.
// One shard's board failures degrade that shard alone; the stealer
// drains its backlog into healthy shards, and every response frame
// names the shard that served it so clients can attribute per-shard
// sheds and latency. Telemetry rolls the per-shard snapshots into a
// metrics.FleetSnapshot: /metrics.json carries shard snapshots plus
// totals, /metrics the fleet-total Prometheus text, and /trace.json a
// timeline with one process track per shard.

package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dlbooster/internal/control"
	"dlbooster/internal/core"
	"dlbooster/internal/engine"
	"dlbooster/internal/faults"
	"dlbooster/internal/fleet"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
)

// fleetAdmitter adapts the fleet router to handleConn's front-door
// contract, keying consistent-hash placement by client id so one
// client's frames keep shard affinity while the ring is stable.
type fleetAdmitter struct {
	f *fleet.Fleet
}

func (a *fleetAdmitter) admit(item core.Item) (int, int) {
	shard, adm := a.f.Submit(item, uint64(item.Meta.ClientID))
	switch adm {
	case fleet.AdmitOK:
		return shard, admitOK
	case fleet.AdmitShed:
		return shard, admitShed
	default:
		// The fleet books the refusal against a shard even while
		// draining; keep the attribution for the status frame.
		if shard < 0 {
			shard = 0
		}
		return shard, admitClosed
	}
}

// shardEngine is one shard's compute tail: dispatcher plus inference
// engine hanging off the shard Booster's batch queue.
type shardEngine struct {
	dev  *gpu.Device
	inf  *engine.Inference
	done chan struct{}
}

func serveFleet(cfg serveConfig) error {
	if cfg.backend != "dlbooster" {
		return fmt.Errorf("-shards %d needs the dlbooster backend; the %s backend has no shard pipeline", cfg.shards, cfg.backend)
	}
	var placement fleet.Placement
	switch cfg.placement {
	case "", "least-loaded":
		placement = fleet.PlacementLeastLoaded
	case "hash":
		placement = fleet.PlacementHash
	default:
		return fmt.Errorf("-placement %q: want least-loaded or hash", cfg.placement)
	}
	faultCfg, err := faults.ParseSpec(cfg.faultFPGA)
	if err != nil {
		return err
	}
	var inject *faults.Injector
	if faultCfg.Enabled() {
		// Faults target shard 0 only: the point of injecting against a
		// fleet is watching one shard degrade while the rest carry on.
		inject = faults.New(faultCfg)
	}
	if cfg.snapFile != "" && cfg.snapEvery <= 0 {
		fmt.Fprintf(os.Stderr, "dlserve: warning: -snapshot-file %q has no effect without -snapshot-every\n", cfg.snapFile)
	}
	slo, ctlSLO, histEvery, err := cfg.telemetryPlan()
	if err != nil {
		return err
	}
	telemetry := cfg.metricsAddr != "" || cfg.snapEvery > 0 || cfg.traceFile != "" || histEvery > 0
	var flight *metrics.FlightRecorder
	if cfg.flightDir != "" {
		flight = metrics.NewFlightRecorder(metrics.FlightConfig{DumpDir: cfg.flightDir})
		inject.SetHook(func(kind string, op int64) {
			if path := flight.Note("fault_"+kind, fmt.Sprintf("injected %s fault at decoder op %d", kind, op)); path != "" {
				fmt.Fprintf(os.Stderr, "dlserve: flight recorder dumped to %s\n", path)
			}
		})
	}

	batch, size := cfg.batch, cfg.size
	grace := cfg.batchTimeout
	if grace <= 0 {
		grace = time.Millisecond
	}
	// One shared tiered cache across the fleet: every shard captures
	// into and replays from the same tiers, so a tensor decoded on any
	// shard is readable by all of them.
	var shared *core.TieredCache
	if cacheCfg := cfg.cacheConfig(); cacheCfg.RAMBytes > 0 {
		shared, err = fleet.SharedCacheFor(cacheCfg)
		if err != nil {
			return err
		}
	}
	fl, err := fleet.New(fleet.Config{
		Shards:    cfg.shards,
		Placement: placement,
		QueueCap:  cfg.queueCap,
		Grace:     grace,
		NewBooster: func(shard int) (*core.Booster, error) {
			var reg *metrics.Registry
			if telemetry {
				reg = metrics.NewRegistry()
				if flight != nil {
					reg.AttachFlight(flight)
				}
				if shard == 0 {
					// Runtime health gauges are process-wide: register
					// them on exactly one shard so the fleet rollup
					// (which sums gauges) doesn't count them ×N.
					metrics.RegisterRuntimeGauges(reg)
				}
			}
			bcfg := core.Config{
				BatchSize: batch, OutW: size, OutH: size, Channels: 3, PoolBatches: 8,
				Resilience:   cfg.res,
				BatchTimeout: cfg.batchTimeout,
				Metrics:      reg,
				Flight:       flight,
				SharedCache:  shared,
			}
			if shard == 0 {
				bcfg.FPGA = fpga.Config{Inject: inject}
			}
			return core.New(bcfg)
		},
	})
	if err != nil {
		return err
	}
	defer fl.Close()

	// Per-shard compute tail: its own simulated GPU, solver, dispatcher
	// and inference engine, with Emit stamping the shard id into every
	// response frame.
	cs := &conns{byID: make(map[int]net.Conn)}
	engines := make([]*shardEngine, 0, cfg.shards)
	for _, s := range fl.Shards() {
		s := s
		dev, err := gpu.NewDevice(s.ID(), 1<<31)
		if err != nil {
			return err
		}
		solver, err := core.NewSolver(dev, 2, batch*size*size*3)
		if err != nil {
			dev.Close()
			return err
		}
		b := s.Booster()
		disp, err := core.NewDispatcher(b.Batches(), b.RecycleBatch, []*core.Solver{solver}, core.DispatcherConfig{Metrics: b.Registry()})
		if err != nil {
			dev.Close()
			return err
		}
		inf, err := engine.NewInference(engine.InferenceConfig{
			Profile: perf.GoogLeNet, Solver: solver, Classes: 1000,
			PaceCompute: cfg.pace, Latency: &metrics.Histogram{},
			Emit:    cs.emit(s.ID()),
			Metrics: b.Registry(),
		})
		if err != nil {
			dev.Close()
			return err
		}
		se := &shardEngine{dev: dev, inf: inf, done: make(chan struct{})}
		engines = append(engines, se)
		defer dev.Close()
		go func(id int) {
			if err := disp.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "dlserve: shard %d dispatcher: %v\n", id, err)
			}
		}(s.ID())
		go func(se *shardEngine, id int) {
			defer close(se.done)
			if _, err := se.inf.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "dlserve: shard %d engine: %v\n", id, err)
			}
		}(se, s.ID())
	}

	if cfg.metricsAddr != "" {
		if err := serveFleetMetrics(cfg.metricsAddr, fl, histEvery > 0, cfg.pprof); err != nil {
			return err
		}
	}
	var snapStop chan struct{}
	var snapDone chan struct{}
	if cfg.snapEvery > 0 {
		snapStop, snapDone = make(chan struct{}), make(chan struct{})
		go fleetSnapshotLoop(fl, cfg.snapEvery, cfg.snapFile, snapStop, snapDone)
	}
	if flight != nil {
		// Sample the richest registry of the faulted shard — the one
		// whose degradation the recorder exists to explain.
		stop := flight.SampleLoop(fl.Shards()[0].Booster().Registry(), time.Second)
		defer stop()
	}
	if histEvery > 0 {
		// Per-shard history rings behind the merged fleet view; Drain
		// joins the samplers.
		fl.StartSampler(metrics.SamplerConfig{Interval: histEvery, Capacity: cfg.historySamples})
	}

	// One autotuner per shard, each closing the loop over that shard's
	// own history and knob block — a degraded shard retunes alone
	// instead of dragging the fleet's operating point with it. The
	// throughput target divides across shards (each holds its slice);
	// latency and shed objectives are per-request and apply as given.
	var ctls []*control.Controller
	if ctlSLO != nil {
		shardSLO := *ctlSLO
		if shardSLO.TargetThroughput > 0 {
			shardSLO.TargetThroughput /= float64(cfg.shards)
		}
		for i, s := range fl.Shards() {
			c, err := control.New(
				control.PipelinePlant{Booster: s.Booster(), Admission: s},
				fl.Histories()[i],
				control.Config{
					SLO:      &shardSLO,
					Interval: histEvery,
					Registry: s.Booster().Registry(),
					Name:     fmt.Sprintf("shard %d", s.ID()),
				})
			if err != nil {
				return err
			}
			ctls = append(ctls, c)
		}
	}

	fl.Start()
	for _, c := range ctls {
		c.Start()
	}
	if ctlSLO != nil {
		fmt.Printf("dlserve: autotune steering %d shards toward %s every %v\n", cfg.shards, ctlSLO.String(), histEvery)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	var closing atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		closing.Store(true)
		_ = ln.Close()
	}()
	fmt.Printf("dlserve: %s backend, %d shards (%s placement), batch %d (timeout %v), queue %d per shard, listening on %s\n",
		cfg.backend, cfg.shards, placement, batch, cfg.batchTimeout, cfg.queueCap, ln.Addr())
	adm := &fleetAdmitter{f: fl}
	for {
		nc, err := ln.Accept()
		if err != nil {
			// Drain: stop the autotuners first (no retuning a pipeline
			// that is shutting down), then the fleet stops the stealer,
			// closes every ingest queue and waits for the epochs; each
			// shard's engine then finishes its in-flight predictions
			// before connections drop.
			for i, c := range ctls {
				c.Stop()
				reportAutotune(c, fmt.Sprintf("shard %d", i))
			}
			if derr := fl.Drain(); derr != nil {
				fmt.Fprintf(os.Stderr, "dlserve: drain: %v\n", derr)
			}
			waitEngines(engines, 3*time.Second)
			cs.closeAll()
			if snapStop != nil {
				close(snapStop)
				<-snapDone
			}
			reportShards(fl)
			if histEvery > 0 {
				if fd := fl.DiagnoseTrend(); fd != nil {
					fmt.Fprintf(os.Stderr, "dlserve: fleet trend:\n%s", fd.Report())
				}
				if slo != nil {
					fmt.Fprintf(os.Stderr, "dlserve: %s", slo.Evaluate(fl.History()).Report())
				}
			}
			if cfg.traceFile != "" && telemetry {
				writeFleetTraceFile(cfg.traceFile, fl)
			}
			if flight != nil {
				if path, derr := flight.Dump("shutdown"); derr == nil {
					fmt.Fprintf(os.Stderr, "dlserve: flight recorder dumped to %s\n", path)
				}
			}
			if closing.Load() {
				return nil
			}
			return err
		}
		go handleConn(nc, cs, adm)
	}
}

// waitEngines blocks until every shard engine finished or the timeout
// passes — the bounded-drain promise of the single-pipeline path, per
// shard.
func waitEngines(engines []*shardEngine, timeout time.Duration) {
	deadline := time.After(timeout)
	for _, se := range engines {
		select {
		case <-se.done:
		case <-deadline:
			return
		}
	}
}

// reportShards prints each shard's event log and degradation summary —
// the fleet's version of the classic path's post-epoch stderr report —
// plus the fleet doctor's spread sentence.
func reportShards(fl *fleet.Fleet) {
	for _, s := range fl.Shards() {
		b := s.Booster()
		for _, e := range b.Events() {
			fmt.Fprintf(os.Stderr, "dlserve: shard %d: %s: %s\n", s.ID(), e.Name, e.Detail)
		}
		if b.Degraded() {
			fmt.Fprintf(os.Stderr, "dlserve: shard %d served %d images on the CPU fallback path (%d stolen away, %d retries, %d command timeouts)\n",
				s.ID(), b.FallbackDecodes(), s.StolenOut(), b.Retries(), b.CmdTimeouts())
		}
	}
	if st := fl.Steals(); st > 0 {
		fmt.Fprintf(os.Stderr, "dlserve: work stealer moved %d queued requests off degraded shards\n", st)
	}
	fmt.Fprintf(os.Stderr, "dlserve: fleet doctor: %s\n", fl.Diagnose(nil).Summary)
}

// serveFleetMetrics exposes the fleet rollup over HTTP: /metrics is
// the fleet-total Prometheus exposition, /metrics.json the full
// FleetSnapshot (per-shard snapshots plus totals), /history.json the
// merged fleet telemetry ring (404 without -history), /trace.json a
// Chrome trace timeline with one process track per shard. With -pprof,
// net/http/pprof mounts under /debug/pprof/.
func serveFleetMetrics(addr string, fl *fleet.Fleet, histOn, pprofOn bool) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/history.json", func(w http.ResponseWriter, _ *http.Request) {
		if !histOn {
			http.Error(w, "windowed telemetry is off; start the server with -history or -slo", http.StatusNotFound)
			return
		}
		// Merged per request: shard rings roll up the way snapshots do.
		data, err := fl.History().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	registerPprof(mux, pprofOn)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = fl.Snapshot().Total.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		data, err := fl.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = fl.Snapshot().WriteChromeTrace(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("dlserve: telemetry on http://%s/metrics\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// fleetSnapshotLoop is snapshotLoop for a fleet: each tick renders the
// full rollup (per-shard snapshots plus totals) to JSON, reporting
// failures to stderr (rate-limited) and joining the drain via
// stop/done like its single-pipeline counterpart.
func fleetSnapshotLoop(fl *fleet.Fleet, every time.Duration, path string, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	var warn snapWarner
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		data, err := fl.Snapshot().JSON()
		if err != nil {
			warn.warnf("rendering fleet snapshot: %v", err)
			continue
		}
		if path == "" {
			fmt.Fprintf(os.Stderr, "%s\n", data)
			continue
		}
		if err := metrics.WriteFileAtomic(path, append(data, '\n')); err != nil {
			warn.warnf("writing %s: %v", path, err)
		}
	}
}

// writeFleetTraceFile writes the per-shard Chrome trace timeline on
// shutdown.
func writeFleetTraceFile(path string, fl *fleet.Fleet) {
	var buf bytes.Buffer
	if err := fl.Snapshot().WriteChromeTrace(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: trace export: %v\n", err)
		return
	}
	if err := metrics.WriteFileAtomic(path, buf.Bytes()); err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: writing %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "dlserve: wrote trace timeline to %s\n", path)
}
