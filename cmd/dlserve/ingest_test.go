package main

import (
	"testing"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/metrics"
	"dlbooster/internal/queue"
)

// TestIngestKnobAndClosedShedAccounting pins the single-pipeline front
// door's ledger: the admission knob sheds at the effective cap without
// the grace wait, and frames refused after the queue closes (the
// shutdown grace window) count in serve_shed_total — with the closed
// subset distinguishable — so offered = queued + shed reconciles
// across a drain.
func TestIngestKnobAndClosedShedAccounting(t *testing.T) {
	items := queue.New[core.Item](8)
	ing := &ingest{items: items, grace: time.Millisecond}
	ing.effCap.Store(int64(items.Cap()))
	reg := metrics.NewRegistry()
	ing.reg = reg
	reg.RegisterQueue("ingest_items", items.Len, ing.QueueCap)
	reg.RegisterCounterFunc("serve_shed_total", ing.shed.Load)
	reg.RegisterCounterFunc("serve_shed_closed_total", ing.shedClosed.Load)
	reg.RegisterGauge("knob_queue_cap", func() float64 { return float64(ing.QueueCap()) })

	if got := ing.QueueCap(); got != 8 {
		t.Fatalf("default QueueCap = %d, want the physical 8", got)
	}
	ing.SetQueueCap(2)
	if got := ing.QueueCap(); got != 2 {
		t.Fatalf("QueueCap after retune = %d, want 2", got)
	}

	// Nothing drains the queue: items beyond the effective cap shed.
	var admitted, shed int
	for i := 0; i < 5; i++ {
		switch _, outcome := ing.admit(core.Item{Meta: core.ItemMeta{Seq: i}}); outcome {
		case admitOK:
			admitted++
		case admitShed:
			shed++
		}
	}
	if admitted != 2 || shed != 3 {
		t.Fatalf("admitted %d / shed %d, want 2 / 3 at effective cap 2", admitted, shed)
	}

	// Drain: the closed queue refuses, and the refusals stay on the
	// books instead of vanishing into a silent connection drop.
	items.Close()
	for i := 5; i < 7; i++ {
		if _, outcome := ing.admit(core.Item{Meta: core.ItemMeta{Seq: i}}); outcome != admitClosed {
			t.Fatalf("post-close admission = %d, want admitClosed", outcome)
		}
	}
	if got := ing.shed.Load(); got != 5 {
		t.Fatalf("serve_shed_total = %d, want 3 cap sheds + 2 closed refusals", got)
	}
	if got := ing.shedClosed.Load(); got != 2 {
		t.Fatalf("serve_shed_closed_total = %d, want 2", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["serve_shed_total"] != 5 || snap.Counters["serve_shed_closed_total"] != 2 {
		t.Fatalf("shed counters = %v", snap.Counters)
	}
	if g := snap.Gauges["knob_queue_cap"]; g != 2 {
		t.Fatalf("knob_queue_cap gauge = %v, want 2", g)
	}
	if q := snap.Queues["ingest_items"]; q.Cap != 2 || q.Len != 2 {
		t.Fatalf("ingest_items probe = %+v, want len 2 / effective cap 2", q)
	}

	// Clamps: floor 1, ceiling the physical queue.
	ing.SetQueueCap(0)
	if got := ing.QueueCap(); got != 1 {
		t.Fatalf("QueueCap after 0 = %d, want 1", got)
	}
	ing.SetQueueCap(100)
	if got := ing.QueueCap(); got != 8 {
		t.Fatalf("QueueCap after overshoot = %d, want the physical 8", got)
	}
}
