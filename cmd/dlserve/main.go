// Command dlserve demonstrates the online-inference workflow of paper
// Figure 1 over real TCP: clients send JPEG frames, the server decodes
// them through the DLBooster pipeline (or the CPU baseline), runs the
// batch inference engine on a simulated GPU, and returns per-image
// predictions with receipt-to-prediction latency.
//
// Server:  dlserve -listen :7878 -backend dlbooster -batch 8
// Client:  dlserve -connect 127.0.0.1:7878 -n 64
//
// Wire protocol, both directions big-endian:
//
//	request:  uint32 payloadLen | payload (one JPEG)
//	response: uint32 seq | uint32 status | uint32 label | uint32 shard | uint64 latencyNanos
//
// Every request gets exactly one response. Status 0 (ok) carries a
// prediction; status 1 (shed) means admission control refused the
// request because the ingest queue stayed full past its grace period
// (label and latency are zero); status 2 (bad frame) reports a
// malformed request header — zero or oversized length — after which
// the server closes the connection. shard names the pipeline shard
// that served (or shed) the request — always 0 on a single-shard
// server — so a client can attribute sheds and latency per shard.
//
// With -shards N the server runs N independent Booster shards — each
// with its own decoder boards, HugePage arena, batch engine and
// admission control — behind the internal/fleet router: requests
// place by least-loaded queue or consistent client hash, a shard
// whose boards degrade to CPU is rung off the hash ring, and the work
// stealer drains its backlog into healthy shards.
//
// Batching is dynamic: a partial batch is sealed once its oldest
// request has waited -batch-timeout, so any request count gets its
// predictions without waiting for a full batch or server shutdown.
// Ingest is bounded by -queue; an overloaded server sheds with status
// frames instead of queueing without bound.
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dlbooster/internal/backends"
	"dlbooster/internal/control"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
	"dlbooster/internal/queue"
)

const maxFrame = 32 << 20

// respLen is the response frame size: seq, status, label, shard,
// latencyNanos.
const respLen = 24

// Response status codes (the uint32 after seq in every response frame).
const (
	statusOK       = 0 // prediction follows in label/latency
	statusShed     = 1 // admission control refused the request
	statusBadFrame = 2 // malformed request header; connection closes
)

func main() {
	listen := flag.String("listen", "", "serve on this address (server mode)")
	connect := flag.String("connect", "", "send to this address (client mode)")
	backendName := flag.String("backend", "dlbooster", "server backend: dlbooster or cpu")
	batch := flag.Int("batch", 8, "server batch size")
	shards := flag.Int("shards", 1, "server: number of independent pipeline shards (dlbooster backend only)")
	placement := flag.String("placement", "least-loaded", "server: shard placement policy with -shards > 1: least-loaded or hash (consistent hash of the client id)")
	batchTimeout := flag.Duration("batch-timeout", 5*time.Millisecond, "server: seal a partial batch once its oldest request has waited this long (0 = strict batches)")
	queueCap := flag.Int("queue", 256, "server: ingest queue capacity; requests beyond it are shed with status frames")
	n := flag.Int("n", 64, "client: number of images to send")
	wait := flag.Duration("wait", 0, "client: give up on outstanding responses this long after the last send (0 = wait forever)")
	size := flag.Int("size", 224, "server decoder output edge")
	pace := flag.Bool("pace", false, "server: pace GPU compute at the calibrated GoogLeNet rate")
	faultFPGA := flag.String("fault-fpga", "", "server: inject decoder faults, e.g. fail-rate=0.3,seed=7 or stuck-after=64 (keys: "+strings.Join(faults.SpecKeys(), " ")+")")
	decodeRetries := flag.Int("decode-retries", 0, "server: resubmit a failed decode command up to N times")
	cmdTimeout := flag.Duration("cmd-timeout", 0, "server: per-command decode timeout (0 = wait forever)")
	fallbackAfter := flag.Int("fallback-after", 0, "server: reroute decoding to the CPU after N consecutive FPGA failures (0 = never)")
	metricsAddr := flag.String("metrics-addr", "", "server: serve telemetry on this address — /metrics (Prometheus text), /metrics.json (snapshot) and /history.json (windowed telemetry ring when -history is on)")
	history := flag.Duration("history", 0, "server: sample windowed telemetry at this interval into a bounded history ring (0 = off; enabled at 1s automatically by -slo)")
	historySamples := flag.Int("history-samples", 0, "server: history ring capacity in samples (0 = default 120)")
	sloSpec := flag.String("slo", "", "server: judge this SLO spec over the telemetry window at shutdown, e.g. tput=900,p99ms=250,shed=0.001,window=60s (keys: tput p99ms stage shed window)")
	autotuneSpec := flag.String("autotune", "", "server: run the adaptive SLO autotuner against this spec (same keys as -slo), actuating the batch-timeout, CPU-offload and admission knobs each sampling interval; dlbooster backend only, implies -history")
	pprofOn := flag.Bool("pprof", false, "server: mount net/http/pprof under /debug/pprof/ on the -metrics-addr mux")
	snapEvery := flag.Duration("snapshot-every", 0, "server: write a JSON telemetry snapshot at this interval (0 = off)")
	snapFile := flag.String("snapshot-file", "", "server: overwrite this file with each periodic snapshot (default: stderr)")
	traceFile := flag.String("trace-file", "", "server: write a Chrome trace_event timeline (Perfetto-loadable) to this file on shutdown; also serves /trace.json when -metrics-addr is set")
	flightDir := flag.String("flight-dir", "", "server: enable the flight recorder, dumping its rings into this directory on degradation, wedged-device faults, backend errors and shutdown")
	cacheMB := flag.Int("cache-mb", 0, "server: RAM tier of the decoded-tensor ReplayCache in MiB (0 = no cache); with -shards > 1 the tiers are shared across shards")
	cacheSpillMB := flag.Int("cache-spill-mb", 0, "server: NVMe spill tier of the ReplayCache in MiB (0 = RAM tier only)")
	cacheCompress := flag.Bool("cache-compress", false, "server: flate-compress tensors spilled to the NVMe tier")
	flag.Parse()

	var err error
	switch {
	case *listen != "":
		err = serve(serveConfig{
			addr: *listen, backend: *backendName, batch: *batch, size: *size,
			shards: *shards, placement: *placement,
			batchTimeout: *batchTimeout, queueCap: *queueCap,
			pace: *pace, faultFPGA: *faultFPGA,
			res: core.Resilience{
				MaxRetries:    *decodeRetries,
				CmdTimeout:    *cmdTimeout,
				FallbackAfter: *fallbackAfter,
			},
			metricsAddr:    *metricsAddr,
			historyEvery:   *history,
			historySamples: *historySamples,
			sloSpec:        *sloSpec,
			autotuneSpec:   *autotuneSpec,
			pprof:          *pprofOn,
			snapEvery:      *snapEvery,
			snapFile:       *snapFile,
			traceFile:     *traceFile,
			flightDir:     *flightDir,
			cacheMB:       *cacheMB,
			cacheSpillMB:  *cacheSpillMB,
			cacheCompress: *cacheCompress,
		})
	case *connect != "":
		err = client(*connect, *n, *wait)
	default:
		err = fmt.Errorf("pass -listen (server) or -connect (client)")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: %v\n", err)
		os.Exit(1)
	}
}

// conns routes predictions back to their connection.
type conns struct {
	mu     sync.Mutex
	byID   map[int]net.Conn
	nextID int
}

func (c *conns) add(nc net.Conn) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	c.byID[c.nextID] = nc
	return c.nextID
}

func (c *conns) remove(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.byID, id)
}

// emit returns the prediction callback for one shard's engine: every
// response frame names the shard that served it.
func (c *conns) emit(shard int) func(engine.Prediction) {
	return func(p engine.Prediction) {
		c.write(p.ClientID, p.Seq, statusOK, p.Label, shard, p.Latency)
	}
}

// sendStatus writes a non-OK response frame (shed, bad frame) for one
// request, so the client always hears back before anything closes.
func (c *conns) sendStatus(id, seq int, status uint32, shard int) {
	c.write(id, seq, status, 0, shard, 0)
}

func (c *conns) write(id, seq int, status uint32, label, shard int, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nc := c.byID[id]
	if nc == nil {
		return
	}
	var buf [respLen]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(seq))
	binary.BigEndian.PutUint32(buf[4:], status)
	binary.BigEndian.PutUint32(buf[8:], uint32(label))
	binary.BigEndian.PutUint32(buf[12:], uint32(shard))
	binary.BigEndian.PutUint64(buf[16:], uint64(latency))
	_, _ = nc.Write(buf[:])
}

// closeAll drops every live connection so handler goroutines blocked in
// reads unwind at shutdown.
func (c *conns) closeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, nc := range c.byID {
		_ = nc.Close()
	}
}

// serveConfig carries the server-mode flags.
type serveConfig struct {
	addr      string
	backend   string
	batch     int
	size      int
	pace      bool
	faultFPGA string
	res       core.Resilience

	// shards > 1 runs the fleet path (serveFleet): that many
	// independent pipeline shards behind the placement policy, each
	// with its own ingest queue of queueCap slots.
	shards    int
	placement string

	// batchTimeout is the dynamic-batching deadline (0 = strict
	// batches); queueCap bounds the ingest queue for admission control.
	batchTimeout time.Duration
	queueCap     int

	// Telemetry: metricsAddr serves /metrics, /metrics.json,
	// /history.json and /trace.json over HTTP; snapEvery writes periodic
	// JSON snapshots to snapFile (or stderr); traceFile receives a
	// Chrome trace timeline on shutdown. Any of them enables full
	// tracing on the pipeline. flightDir enables the always-on flight
	// recorder independently.
	metricsAddr string
	snapEvery   time.Duration
	snapFile    string
	traceFile   string
	flightDir   string

	// historyEvery > 0 runs the windowed-telemetry sampler at that
	// interval into a ring of historySamples samples (0 = default);
	// sloSpec, when set, is judged over the window at shutdown (and
	// turns the sampler on at 1s if historyEvery is 0). autotuneSpec
	// runs the internal/control feedback loop against its SLO at the
	// sampling interval (and doubles as the shutdown -slo when none was
	// given). pprof mounts net/http/pprof on the metricsAddr mux.
	historyEvery   time.Duration
	historySamples int
	sloSpec        string
	autotuneSpec   string
	pprof          bool

	// cacheMB > 0 gives the pipeline a decoded-tensor ReplayCache: a
	// RAM tier of that size, plus an NVMe spill tier of cacheSpillMB
	// when set (optionally flate-compressed). Serving is a stream, not
	// an epoch, so the cache is a capture surface here — its counters
	// and doctor verdicts show up in the telemetry endpoints.
	cacheMB       int
	cacheSpillMB  int
	cacheCompress bool
}

// cacheConfig translates the -cache-* flags into a core.CacheConfig,
// backing the spill tier with its own paced simulated NVMe device.
func (cfg serveConfig) cacheConfig() core.CacheConfig {
	if cfg.cacheMB <= 0 {
		return core.CacheConfig{}
	}
	cc := core.CacheConfig{
		RAMBytes: int64(cfg.cacheMB) << 20,
		Compress: cfg.cacheCompress,
	}
	if cfg.cacheSpillMB > 0 {
		cc.Spill = nvme.New(nvme.Config{
			ReadBandwidth:  perf.NVMeReadBandwidth,
			ReadLatency:    time.Duration(perf.NVMeReadLatency * float64(time.Second)),
			WriteBandwidth: perf.NVMeWriteBandwidth,
			WriteLatency:   time.Duration(perf.NVMeWriteLatency * float64(time.Second)),
		})
		cc.SpillBytes = int64(cfg.cacheSpillMB) << 20
	}
	return cc
}

func serve(cfg serveConfig) error {
	if cfg.queueCap < 1 {
		return fmt.Errorf("-queue %d: ingest queue needs at least one slot", cfg.queueCap)
	}
	if cfg.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one shard", cfg.shards)
	}
	if cfg.shards > 1 {
		return serveFleet(cfg)
	}
	faultCfg, err := faults.ParseSpec(cfg.faultFPGA)
	if err != nil {
		return err
	}
	var inject *faults.Injector
	if faultCfg.Enabled() {
		inject = faults.New(faultCfg)
	}
	if cfg.snapFile != "" && cfg.snapEvery <= 0 {
		fmt.Fprintf(os.Stderr, "dlserve: warning: -snapshot-file %q has no effect without -snapshot-every\n", cfg.snapFile)
	}
	slo, ctlSLO, histEvery, err := cfg.telemetryPlan()
	if err != nil {
		return err
	}
	if ctlSLO != nil && cfg.backend != "dlbooster" {
		return fmt.Errorf("-autotune actuates the dlbooster pipeline's knobs; the %s backend has none", cfg.backend)
	}
	var reg *metrics.Registry
	if cfg.metricsAddr != "" || cfg.snapEvery > 0 || cfg.traceFile != "" || histEvery > 0 {
		reg = metrics.NewRegistry()
		// Runtime health gauges are process-wide; one registry per
		// process carries them (the fleet path registers on shard 0).
		metrics.RegisterRuntimeGauges(reg)
	}
	var flight *metrics.FlightRecorder
	if cfg.flightDir != "" {
		flight = metrics.NewFlightRecorder(metrics.FlightConfig{DumpDir: cfg.flightDir})
		// Injected faults land in the recorder's timeline; the first
		// wedged-device fault ("fault_stuck") triggers an automatic dump.
		inject.SetHook(func(kind string, op int64) {
			if path := flight.Note("fault_"+kind, fmt.Sprintf("injected %s fault at decoder op %d", kind, op)); path != "" {
				fmt.Fprintf(os.Stderr, "dlserve: flight recorder dumped to %s\n", path)
			}
		})
		if reg != nil {
			reg.AttachFlight(flight)
		}
	}
	batch, size := cfg.batch, cfg.size
	var backend backends.Backend
	switch cfg.backend {
	case "dlbooster":
		b, err := backends.NewDLBooster(core.Config{
			BatchSize: batch, OutW: size, OutH: size, Channels: 3, PoolBatches: 8,
			FPGA:         fpga.Config{Inject: inject},
			Resilience:   cfg.res,
			BatchTimeout: cfg.batchTimeout,
			Metrics:      reg,
			Flight:       flight,
			Cache:        cfg.cacheConfig(),
		})
		if err != nil {
			return err
		}
		backend = b
	case "cpu":
		if inject != nil {
			return fmt.Errorf("-fault-fpga targets the decoder; the cpu backend has none")
		}
		b, err := backends.NewCPU(backends.CPUConfig{
			BatchSize: batch, OutW: size, OutH: size, Channels: 3,
			PoolBatches: 8, Workers: 4,
			BatchTimeout: cfg.batchTimeout,
			Cache:        cfg.cacheConfig(),
		})
		if err != nil {
			return err
		}
		backend = b
	default:
		return fmt.Errorf("unknown backend %q", cfg.backend)
	}
	defer backend.Close()

	dev, err := gpu.NewDevice(0, 1<<31)
	if err != nil {
		return err
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batch*size*size*3)
	if err != nil {
		return err
	}
	disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, []*core.Solver{solver}, core.DispatcherConfig{Metrics: reg})
	if err != nil {
		return err
	}
	cs := &conns{byID: make(map[int]net.Conn)}
	lat := &metrics.Histogram{}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 1000,
		PaceCompute: cfg.pace, Latency: lat,
		Emit:    cs.emit(0),
		Metrics: reg,
	})
	if err != nil {
		return err
	}

	// The richest registry available: the booster's internal one carries
	// queue depths and decoder stats even when no -metrics-addr registry
	// exists. The flight recorder, the history sampler and the ingest
	// probes all read/land there.
	richReg := reg
	if db, ok := backend.(*backends.DLBooster); ok {
		richReg = db.Registry()
	}
	// Built here so /history.json can serve the ring, but started only
	// after the ingest probes are registered below — every sample then
	// carries the full probe set.
	var sampler *metrics.Sampler
	if histEvery > 0 {
		sampler = metrics.NewSampler(richReg, metrics.SamplerConfig{Interval: histEvery, Capacity: cfg.historySamples})
	}
	if cfg.metricsAddr != "" {
		if err := serveMetrics(cfg.metricsAddr, reg, sampler.History(), cfg.pprof); err != nil {
			return err
		}
	}
	var snapStop chan struct{}
	var snapDone chan struct{}
	if cfg.snapEvery > 0 {
		snapStop, snapDone = make(chan struct{}), make(chan struct{})
		go snapshotLoop(reg, cfg.snapEvery, cfg.snapFile, snapStop, snapDone)
	}
	if flight != nil && richReg != nil {
		stop := flight.SampleLoop(richReg, time.Second)
		defer stop()
	}
	items := queue.New[core.Item](cfg.queueCap)
	grace := cfg.batchTimeout
	if grace <= 0 {
		grace = time.Millisecond
	}
	ing := &ingest{items: items, grace: grace, flight: flight}
	ing.effCap.Store(int64(cfg.queueCap))
	// Ingest probes land in the richest registry available, so the
	// doctor's ingest-overloaded rule and the flight recorder see them
	// even when no -metrics-addr registry exists. The queue probe
	// reports the effective (knob) cap, so occupancy ratios track the
	// admission clients actually experience.
	ing.reg = richReg
	ing.reg.RegisterQueue("ingest_items", items.Len, ing.QueueCap)
	ing.reg.RegisterCounterFunc("serve_shed_total", ing.shed.Load)
	ing.reg.RegisterCounterFunc("serve_shed_closed_total", ing.shedClosed.Load)
	ing.reg.RegisterGauge("knob_queue_cap", func() float64 { return float64(ing.QueueCap()) })
	// The autotuner closes the loop over the same history the sampler
	// records: plant = the booster's decode knobs + the ingest admission
	// knob, judged against the -autotune SLO once per sampling interval.
	var ctl *control.Controller
	if ctlSLO != nil {
		db := backend.(*backends.DLBooster) // guarded above
		ctl, err = control.New(control.PipelinePlant{Booster: db, Admission: ing}, sampler.History(), control.Config{
			SLO:      ctlSLO,
			Interval: histEvery,
			Registry: richReg,
		})
		if err != nil {
			return err
		}
	}
	sampler.Start()
	if ctl != nil {
		ctl.Start()
		fmt.Printf("dlserve: autotune steering toward %s every %v\n", ctlSLO.String(), histEvery)
	}
	go func() {
		defer flight.DumpOnPanic()
		if err := backend.RunEpoch(core.CollectorFromQueue(items)); err != nil {
			fmt.Fprintf(os.Stderr, "dlserve: backend: %v\n", err)
			flight.Note("backend_error", err.Error())
		}
		if db, ok := backend.(*backends.DLBooster); ok {
			for _, e := range db.Events() {
				fmt.Fprintf(os.Stderr, "dlserve: %s: %s\n", e.Name, e.Detail)
			}
			if db.Degraded() {
				fmt.Fprintf(os.Stderr, "dlserve: served %d images on the CPU fallback path (%d retries, %d command timeouts)\n",
					db.FallbackDecodes(), db.Retries(), db.CmdTimeouts())
			}
		}
		backend.CloseBatches()
	}()
	go func() {
		if err := disp.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "dlserve: dispatcher: %v\n", err)
		}
	}()
	engineDone := make(chan struct{})
	go func() {
		defer close(engineDone)
		if _, err := inf.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "dlserve: engine: %v\n", err)
		}
	}()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM closes the listener; the accept loop then runs the
	// drain path below — the operator (and chaos-test) exit path.
	var closing atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		closing.Store(true)
		_ = ln.Close()
	}()
	fmt.Printf("dlserve: %s backend, batch %d (timeout %v), queue %d, listening on %s\n",
		backend.Name(), batch, cfg.batchTimeout, cfg.queueCap, ln.Addr())
	for {
		nc, err := ln.Accept()
		if err != nil {
			// Drain: close the ingest queue first so every handler
			// blocked in admit unblocks; the epoch goroutine then seals
			// its last batch and closes the Full queue, and the engine
			// finishes in-flight predictions before connections drop.
			items.Close()
			select {
			case <-engineDone:
			case <-time.After(3 * time.Second):
			}
			cs.closeAll()
			// Join the periodic-snapshot goroutine and the history
			// sampler: both record state right up to the drain and
			// neither outlives the server.
			if snapStop != nil {
				close(snapStop)
				<-snapDone
			}
			if ctl != nil {
				ctl.Stop()
				reportAutotune(ctl, "")
			}
			sampler.Stop()
			reportWindow(sampler.History(), slo)
			if cfg.traceFile != "" && reg != nil {
				writeTraceFile(cfg.traceFile, reg)
			}
			if flight != nil {
				if path, derr := flight.Dump("shutdown"); derr == nil {
					fmt.Fprintf(os.Stderr, "dlserve: flight recorder dumped to %s\n", path)
				}
			}
			if closing.Load() {
				return nil
			}
			return err
		}
		go handleConn(nc, cs, ing)
	}
}

// telemetryPlan resolves the windowed-telemetry flags: the parsed
// shutdown SLO (nil when unset), the autotuner's SLO (nil when
// -autotune is unset), and the effective history sampling interval —
// -history as given, forced to 1s when an SLO or the autotuner needs a
// window and no interval was chosen. -autotune without -slo also judges
// its own spec at shutdown, so the scorecard reports the objective the
// controller steered toward.
func (cfg serveConfig) telemetryPlan() (slo, ctlSLO *metrics.SLO, histEvery time.Duration, err error) {
	if cfg.sloSpec != "" {
		if slo, err = metrics.ParseSLO(cfg.sloSpec); err != nil {
			return nil, nil, 0, err
		}
	}
	if cfg.autotuneSpec != "" {
		if ctlSLO, err = metrics.ParseSLO(cfg.autotuneSpec); err != nil {
			return nil, nil, 0, fmt.Errorf("-autotune: %w", err)
		}
		if slo == nil {
			slo = ctlSLO
		}
	}
	histEvery = cfg.historyEvery
	if (slo != nil || ctlSLO != nil) && histEvery <= 0 {
		histEvery = time.Second
	}
	if cfg.historySamples > 0 && histEvery <= 0 {
		fmt.Fprintf(os.Stderr, "dlserve: warning: -history-samples %d has no effect without -history or -slo\n", cfg.historySamples)
	}
	return slo, ctlSLO, histEvery, nil
}

// reportAutotune prints one controller's shutdown summary: the decision
// ledger and the operating point it converged to. label distinguishes
// fleet shards ("" on the single-pipeline path).
func reportAutotune(ctl *control.Controller, label string) {
	if label != "" {
		label += ": "
	}
	base, cur := ctl.Base(), ctl.Current()
	fmt.Fprintf(os.Stderr, "dlserve: autotune: %s%d retunes / %d holds over %d decisions; batch_timeout %v→%v, queue_cap %d→%d, cpu_share %.3f→%.3f\n",
		label, ctl.Retunes(), ctl.Holds(), ctl.Decisions(),
		base.BatchTimeout, cur.BatchTimeout, base.QueueCap, cur.QueueCap, base.CPUShare, cur.CPUShare)
}

// reportWindow prints the shutdown windowed-telemetry report: the
// trend-aware doctor over the sampled history, then the SLO scorecard
// when a spec was given. No-op without a history.
func reportWindow(hist *metrics.History, slo *metrics.SLO) {
	if hist == nil {
		return
	}
	if td := metrics.DiagnoseHistory(hist); td != nil {
		fmt.Fprintf(os.Stderr, "dlserve: %s", td.Report())
	}
	if slo != nil {
		fmt.Fprintf(os.Stderr, "dlserve: %s", slo.Evaluate(hist).Report())
	}
}

// serveMetrics exposes the registry over HTTP: /metrics is the
// Prometheus text exposition, /metrics.json the full snapshot,
// /history.json the windowed-telemetry ring (404 without -history),
// /trace.json the recent spans and events as a Chrome trace timeline.
// With pprofOn, net/http/pprof mounts under /debug/pprof/.
func serveMetrics(addr string, reg *metrics.Registry, hist *metrics.History, pprofOn bool) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		data, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteChromeTrace(w)
	})
	registerHistoryEndpoint(mux, hist)
	registerPprof(mux, pprofOn)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("dlserve: telemetry on http://%s/metrics\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// registerHistoryEndpoint mounts /history.json: the full History ring
// as JSON (capacity, lifetime sample count, samples oldest first). A
// server without -history answers 404 so scrapers can tell "off" from
// "empty".
func registerHistoryEndpoint(mux *http.ServeMux, hist *metrics.History) {
	mux.HandleFunc("/history.json", func(w http.ResponseWriter, _ *http.Request) {
		if hist == nil {
			http.Error(w, "windowed telemetry is off; start the server with -history or -slo", http.StatusNotFound)
			return
		}
		data, err := hist.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
}

// registerPprof mounts the net/http/pprof handlers on the telemetry
// mux — the profiling workflow docs/METRICS.md describes (CPU: curl
// /debug/pprof/profile?seconds=10; heap: /debug/pprof/heap).
func registerPprof(mux *http.ServeMux, on bool) {
	if !on {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// snapWarner rate-limits the periodic-snapshot loops' error reporting:
// a wedged disk or a marshalling bug surfaces on stderr, but at most
// once per minute instead of once per tick.
type snapWarner struct {
	last time.Time
}

func (w *snapWarner) warnf(format string, args ...any) {
	if now := time.Now(); now.Sub(w.last) >= time.Minute {
		w.last = now
		fmt.Fprintf(os.Stderr, "dlserve: snapshot: "+format+"\n", args...)
	}
}

// snapshotLoop periodically renders the registry to JSON, overwriting
// path each tick (or appending to stderr when path is empty) — the
// capture mechanism EXPERIMENTS.md uses for offline analysis. Render
// and write failures reach stderr (rate-limited) instead of vanishing;
// closing stop ends the loop, and done is closed on the way out so the
// drain path can join it.
func snapshotLoop(reg *metrics.Registry, every time.Duration, path string, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	var warn snapWarner
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		data, err := reg.Snapshot().JSON()
		if err != nil {
			warn.warnf("rendering snapshot: %v", err)
			continue
		}
		if path == "" {
			fmt.Fprintf(os.Stderr, "%s\n", data)
			continue
		}
		// Atomic (temp + fsync + rename): a scraper reading the file
		// mid-write sees the previous snapshot, never a truncated one.
		if err := metrics.WriteFileAtomic(path, append(data, '\n')); err != nil {
			warn.warnf("writing %s: %v", path, err)
		}
	}
}

// writeTraceFile renders the registry's recent spans and events as a
// Chrome trace timeline and writes it atomically.
func writeTraceFile(path string, reg *metrics.Registry) {
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteChromeTrace(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: trace export: %v\n", err)
		return
	}
	if err := metrics.WriteFileAtomic(path, buf.Bytes()); err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: writing %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "dlserve: wrote trace timeline to %s\n", path)
}

// ingest is the admission-control front door shared by every
// connection handler: a bounded item queue plus shed accounting. A
// request that cannot enter the queue within one grace period is shed
// — the client hears a status frame instead of the server queueing
// without bound.
type ingest struct {
	items *queue.Queue[core.Item]
	grace time.Duration
	shed  atomic.Int64

	// shedClosed is the subset of shed refused because the server was
	// draining (closed ingest) rather than overloaded.
	shedClosed atomic.Int64
	// effCap is the admission knob: the effective queue cap, at most
	// the physical capacity. Below it, admit sheds at the cap without
	// waiting out the grace period.
	effCap atomic.Int64

	reg          *metrics.Registry
	flight       *metrics.FlightRecorder
	overloadOnce sync.Once
}

// SetQueueCap retunes the effective ingest cap — the admission knob the
// autotuner actuates. Clamps to [1, physical capacity]; re-read at
// every admission decision. Safe from any goroutine.
func (g *ingest) SetQueueCap(n int) {
	if n < 1 {
		n = 1
	}
	if c := g.items.Cap(); n > c {
		n = c
	}
	g.effCap.Store(int64(n))
}

// QueueCap returns the effective ingest cap (the physical capacity
// until the first SetQueueCap).
func (g *ingest) QueueCap() int { return int(g.effCap.Load()) }

// Admission outcomes of admitter.admit.
const (
	admitOK     = iota // queued for the pipeline
	admitShed          // refused; send a shed status frame
	admitClosed        // server shutting down; drop the connection
)

// admitter is the front door handleConn pushes requests into: the
// single pipeline's ingest queue, or the fleet router when -shards > 1.
// The returned shard names where the request landed (or was shed), so
// the response frame can attribute it.
type admitter interface {
	admit(item core.Item) (shard, outcome int)
}

func (g *ingest) admit(item core.Item) (int, int) {
	if g.items.Closed() {
		// Classify before the cap check: a drain-time refusal is a
		// closed refusal even when the backlog also sits at the cap.
		return 0, g.refuseClosed()
	}
	if c := int(g.effCap.Load()); c < g.items.Cap() && g.items.Len() >= c {
		// The admission knob sits below the physical queue: shed at the
		// effective cap instead of waiting out the grace period against
		// capacity that is deliberately off-limits.
		g.noteShed()
		return 0, admitShed
	}
	if ok, err := g.items.TryPush(item); err != nil {
		return 0, g.refuseClosed()
	} else if ok {
		return 0, admitOK
	}
	// Full queue: one grace period of backpressure lets a momentary
	// burst drain instead of bouncing straight to a shed.
	ok, err := g.items.PushTimeout(item, g.grace)
	if err != nil {
		return 0, g.refuseClosed()
	}
	if !ok {
		g.noteShed()
		return 0, admitShed
	}
	return 0, admitOK
}

// noteShed books one queue-full shed and rings the one-shot overload
// event.
func (g *ingest) noteShed() {
	g.shed.Add(1)
	g.overloadOnce.Do(func() {
		detail := fmt.Sprintf("ingest queue full (%d items); shedding with status frames", g.QueueCap())
		if g.reg != nil {
			g.reg.Event("ingest_overloaded", detail)
		} else {
			g.flight.Note("ingest_overloaded", detail)
		}
	})
}

// refuseClosed books one draining-time refusal — the frame arrived
// after the ingest queue closed. It counts in serve_shed_total (the
// client was refused either way), with serve_shed_closed_total keeping
// the subset distinguishable, so offered = decoded + shed reconciles
// across a shutdown instead of leaking the grace-window frames.
func (g *ingest) refuseClosed() int {
	g.shed.Add(1)
	g.shedClosed.Add(1)
	return admitClosed
}

func handleConn(nc net.Conn, cs *conns, ing admitter) {
	id := cs.add(nc)
	defer func() {
		cs.remove(id)
		_ = nc.Close()
	}()
	seq := 0
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			return
		}
		length := binary.BigEndian.Uint32(hdr[:])
		if length == 0 || length > maxFrame {
			// Tell the client why before closing: a status frame beats
			// a silent close when debugging a protocol mismatch.
			fmt.Fprintf(os.Stderr, "dlserve: conn %d: bad frame length %d (max %d), closing\n", id, length, maxFrame)
			cs.sendStatus(id, seq, statusBadFrame, 0)
			return
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(nc, payload); err != nil {
			return
		}
		item := core.Item{
			Ref:  fpga.DataRef{Inline: payload},
			Meta: core.ItemMeta{ClientID: id, Seq: seq, ReceivedAt: time.Now()},
		}
		shard, outcome := ing.admit(item)
		switch outcome {
		case admitShed:
			cs.sendStatus(id, seq, statusShed, shard)
		case admitClosed:
			// Draining: the refusal is already on the shed books; tell
			// the client with a shed status frame before dropping the
			// connection, so it isn't left waiting on a silent close.
			cs.sendStatus(id, seq, statusShed, shard)
			return
		}
		seq++
	}
}

// clientStats is what the reader goroutine tallies from response
// frames; the sender reads it only after joining the reader. Tallies
// are kept per shard — a sharded server interleaves status streams
// from every shard onto the one connection, and attributing a shed to
// the wrong shard would misreport which shard is overloaded.
type clientStats struct {
	ok        int
	shed      int
	latencies []float64
	shards    map[int]*shardTally
}

type shardTally struct {
	ok, shed  int
	latencies []float64
}

func (st *clientStats) tally(shard int) *shardTally {
	if st.shards == nil {
		st.shards = make(map[int]*shardTally)
	}
	t := st.shards[shard]
	if t == nil {
		t = &shardTally{}
		st.shards[shard] = t
	}
	return t
}

func client(addr string, n int, wait time.Duration) error {
	spec := dataset.ILSVRCLike(minInt(n, 64))
	payloads := make([][]byte, spec.Count)
	for i := range payloads {
		data, err := spec.JPEG(i)
		if err != nil {
			return err
		}
		payloads[i] = data
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()

	var st clientStats
	done := make(chan error, 1)
	go func() {
		var buf [respLen]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(nc, buf[:]); err != nil {
				done <- err
				return
			}
			shard := int(binary.BigEndian.Uint32(buf[12:]))
			switch status := binary.BigEndian.Uint32(buf[4:]); status {
			case statusOK:
				st.ok++
				ms := float64(binary.BigEndian.Uint64(buf[16:])) / 1e6
				st.latencies = append(st.latencies, ms)
				sh := st.tally(shard)
				sh.ok++
				sh.latencies = append(sh.latencies, ms)
			case statusShed:
				st.shed++
				st.tally(shard).shed++
			case statusBadFrame:
				done <- fmt.Errorf("server reported a malformed request frame (seq %d)", binary.BigEndian.Uint32(buf[0:]))
				return
			default:
				done <- fmt.Errorf("unknown response status %d", status)
				return
			}
		}
		done <- nil
	}()

	start := time.Now()
	var sendErr error
	var hdr [4]byte
	for i := 0; i < n && sendErr == nil; i++ {
		p := payloads[i%len(payloads)]
		binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
		if _, err := nc.Write(hdr[:]); err != nil {
			sendErr = err
		} else if _, err := nc.Write(p); err != nil {
			sendErr = err
		}
	}
	// Join the reader on every exit path — a mid-stream send error or a
	// -wait bound sets a read deadline so it cannot be left behind, and
	// the partial stats it gathered still get reported.
	if sendErr != nil {
		_ = nc.SetReadDeadline(time.Now())
	} else if wait > 0 {
		_ = nc.SetReadDeadline(time.Now().Add(wait))
	}
	readErr := <-done
	elapsed := time.Since(start)

	fmt.Printf("sent %d images in %v (%.0f images/s): %d predictions, %d shed\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), st.ok, st.shed)
	if len(st.latencies) > 0 {
		sort.Float64s(st.latencies)
		q := func(p int) float64 { return st.latencies[minInt(len(st.latencies)*p/100, len(st.latencies)-1)] }
		fmt.Printf("server-side receipt→prediction latency: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			q(50), q(95), q(99), st.latencies[len(st.latencies)-1])
	}
	// Against a sharded server, break the report down per shard so an
	// overloaded or degraded shard's sheds and latency stand out. A
	// single-shard server answers everything from shard 0 and keeps
	// the classic report.
	ids := make([]int, 0, len(st.shards))
	for id := range st.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) > 1 || (len(ids) == 1 && ids[0] != 0) {
		for _, id := range ids {
			sh := st.shards[id]
			line := fmt.Sprintf("  shard %d: %d predictions, %d shed", id, sh.ok, sh.shed)
			if len(sh.latencies) > 0 {
				sort.Float64s(sh.latencies)
				p50 := sh.latencies[minInt(len(sh.latencies)/2, len(sh.latencies)-1)]
				p95 := sh.latencies[minInt(len(sh.latencies)*95/100, len(sh.latencies)-1)]
				line += fmt.Sprintf(", p50=%.2fms p95=%.2fms", p50, p95)
			}
			fmt.Println(line)
		}
	}
	if sendErr != nil {
		return fmt.Errorf("send: %w (%d of %d responses received)", sendErr, st.ok+st.shed, n)
	}
	if readErr != nil {
		if wait > 0 && errors.Is(readErr, os.ErrDeadlineExceeded) {
			fmt.Printf("gave up after %v with %d of %d responses outstanding\n", wait, n-st.ok-st.shed, n)
			return nil
		}
		return readErr
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
