// Command dlserve demonstrates the online-inference workflow of paper
// Figure 1 over real TCP: clients send JPEG frames, the server decodes
// them through the DLBooster pipeline (or the CPU baseline), runs the
// batch inference engine on a simulated GPU, and returns per-image
// predictions with receipt-to-prediction latency.
//
// Server:  dlserve -listen :7878 -backend dlbooster -batch 8
// Client:  dlserve -connect 127.0.0.1:7878 -n 64
//
// Wire protocol, both directions big-endian:
//
//	request:  uint32 payloadLen | payload (one JPEG)
//	response: uint32 seq | uint32 label | uint64 latencyNanos
//
// The server fills strict batches; clients should send a multiple of the
// server's batch size (the final partial batch is flushed only when a
// connection count is a multiple, or at server shutdown).
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"dlbooster/internal/backends"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
	"dlbooster/internal/queue"
)

const maxFrame = 32 << 20

func main() {
	listen := flag.String("listen", "", "serve on this address (server mode)")
	connect := flag.String("connect", "", "send to this address (client mode)")
	backendName := flag.String("backend", "dlbooster", "server backend: dlbooster or cpu")
	batch := flag.Int("batch", 8, "server batch size")
	n := flag.Int("n", 64, "client: number of images to send")
	size := flag.Int("size", 224, "server decoder output edge")
	pace := flag.Bool("pace", false, "server: pace GPU compute at the calibrated GoogLeNet rate")
	faultFPGA := flag.String("fault-fpga", "", "server: inject decoder faults, e.g. fail-rate=0.3,seed=7 or stuck-after=64 (keys: "+strings.Join(faults.SpecKeys(), " ")+")")
	decodeRetries := flag.Int("decode-retries", 0, "server: resubmit a failed decode command up to N times")
	cmdTimeout := flag.Duration("cmd-timeout", 0, "server: per-command decode timeout (0 = wait forever)")
	fallbackAfter := flag.Int("fallback-after", 0, "server: reroute decoding to the CPU after N consecutive FPGA failures (0 = never)")
	metricsAddr := flag.String("metrics-addr", "", "server: serve telemetry on this address — /metrics (Prometheus text) and /metrics.json (snapshot)")
	snapEvery := flag.Duration("snapshot-every", 0, "server: write a JSON telemetry snapshot at this interval (0 = off)")
	snapFile := flag.String("snapshot-file", "", "server: overwrite this file with each periodic snapshot (default: stderr)")
	traceFile := flag.String("trace-file", "", "server: write a Chrome trace_event timeline (Perfetto-loadable) to this file on shutdown; also serves /trace.json when -metrics-addr is set")
	flightDir := flag.String("flight-dir", "", "server: enable the flight recorder, dumping its rings into this directory on degradation, wedged-device faults, backend errors and shutdown")
	flag.Parse()

	var err error
	switch {
	case *listen != "":
		err = serve(serveConfig{
			addr: *listen, backend: *backendName, batch: *batch, size: *size,
			pace: *pace, faultFPGA: *faultFPGA,
			res: core.Resilience{
				MaxRetries:    *decodeRetries,
				CmdTimeout:    *cmdTimeout,
				FallbackAfter: *fallbackAfter,
			},
			metricsAddr: *metricsAddr,
			snapEvery:   *snapEvery,
			snapFile:    *snapFile,
			traceFile:   *traceFile,
			flightDir:   *flightDir,
		})
	case *connect != "":
		err = client(*connect, *n)
	default:
		err = fmt.Errorf("pass -listen (server) or -connect (client)")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: %v\n", err)
		os.Exit(1)
	}
}

// conns routes predictions back to their connection.
type conns struct {
	mu     sync.Mutex
	byID   map[int]net.Conn
	nextID int
}

func (c *conns) add(nc net.Conn) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	c.byID[c.nextID] = nc
	return c.nextID
}

func (c *conns) remove(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.byID, id)
}

// send writes one prediction, serialising writes per connection.
func (c *conns) send(p engine.Prediction) {
	c.mu.Lock()
	nc := c.byID[p.ClientID]
	if nc == nil {
		c.mu.Unlock()
		return
	}
	var buf [16]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(p.Seq))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Label))
	binary.BigEndian.PutUint64(buf[8:], uint64(p.Latency))
	_, _ = nc.Write(buf[:])
	c.mu.Unlock()
}

// serveConfig carries the server-mode flags.
type serveConfig struct {
	addr      string
	backend   string
	batch     int
	size      int
	pace      bool
	faultFPGA string
	res       core.Resilience

	// Telemetry: metricsAddr serves /metrics, /metrics.json and
	// /trace.json over HTTP; snapEvery writes periodic JSON snapshots to
	// snapFile (or stderr); traceFile receives a Chrome trace timeline on
	// shutdown. Any of them enables full tracing on the pipeline.
	// flightDir enables the always-on flight recorder independently.
	metricsAddr string
	snapEvery   time.Duration
	snapFile    string
	traceFile   string
	flightDir   string
}

func serve(cfg serveConfig) error {
	faultCfg, err := faults.ParseSpec(cfg.faultFPGA)
	if err != nil {
		return err
	}
	var inject *faults.Injector
	if faultCfg.Enabled() {
		inject = faults.New(faultCfg)
	}
	if cfg.snapFile != "" && cfg.snapEvery <= 0 {
		fmt.Fprintf(os.Stderr, "dlserve: warning: -snapshot-file %q has no effect without -snapshot-every\n", cfg.snapFile)
	}
	var reg *metrics.Registry
	if cfg.metricsAddr != "" || cfg.snapEvery > 0 || cfg.traceFile != "" {
		reg = metrics.NewRegistry()
	}
	var flight *metrics.FlightRecorder
	if cfg.flightDir != "" {
		flight = metrics.NewFlightRecorder(metrics.FlightConfig{DumpDir: cfg.flightDir})
		// Injected faults land in the recorder's timeline; the first
		// wedged-device fault ("fault_stuck") triggers an automatic dump.
		inject.SetHook(func(kind string, op int64) {
			if path := flight.Note("fault_"+kind, fmt.Sprintf("injected %s fault at decoder op %d", kind, op)); path != "" {
				fmt.Fprintf(os.Stderr, "dlserve: flight recorder dumped to %s\n", path)
			}
		})
		if reg != nil {
			reg.AttachFlight(flight)
		}
	}
	batch, size := cfg.batch, cfg.size
	var backend backends.Backend
	switch cfg.backend {
	case "dlbooster":
		b, err := backends.NewDLBooster(core.Config{
			BatchSize: batch, OutW: size, OutH: size, Channels: 3, PoolBatches: 8,
			FPGA:       fpga.Config{Inject: inject},
			Resilience: cfg.res,
			Metrics:    reg,
			Flight:     flight,
		})
		if err != nil {
			return err
		}
		backend = b
	case "cpu":
		if inject != nil {
			return fmt.Errorf("-fault-fpga targets the decoder; the cpu backend has none")
		}
		b, err := backends.NewCPU(backends.CPUConfig{
			BatchSize: batch, OutW: size, OutH: size, Channels: 3,
			PoolBatches: 8, Workers: 4,
		})
		if err != nil {
			return err
		}
		backend = b
	default:
		return fmt.Errorf("unknown backend %q", cfg.backend)
	}
	defer backend.Close()

	dev, err := gpu.NewDevice(0, 1<<31)
	if err != nil {
		return err
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batch*size*size*3)
	if err != nil {
		return err
	}
	disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, []*core.Solver{solver}, core.DispatcherConfig{Metrics: reg})
	if err != nil {
		return err
	}
	cs := &conns{byID: make(map[int]net.Conn)}
	lat := &metrics.Histogram{}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 1000,
		PaceCompute: cfg.pace, Latency: lat,
		Emit:    cs.send,
		Metrics: reg,
	})
	if err != nil {
		return err
	}

	if cfg.metricsAddr != "" {
		if err := serveMetrics(cfg.metricsAddr, reg); err != nil {
			return err
		}
	}
	if cfg.snapEvery > 0 {
		go snapshotLoop(reg, cfg.snapEvery, cfg.snapFile)
	}
	if flight != nil {
		// The recorder samples the richest registry available: the
		// booster's internal one carries queue depths and decoder stats
		// even when no -metrics-addr registry exists.
		sampleReg := reg
		if db, ok := backend.(*backends.DLBooster); ok {
			sampleReg = db.Registry()
		}
		if sampleReg != nil {
			stop := flight.SampleLoop(sampleReg, time.Second)
			defer stop()
		}
	}
	if cfg.traceFile != "" || flight != nil {
		// On SIGINT/SIGTERM, flush the timeline and the flight rings
		// before exiting — the chaos-test (and operator) exit path.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if cfg.traceFile != "" && reg != nil {
				writeTraceFile(cfg.traceFile, reg)
			}
			if flight != nil {
				if path, err := flight.Dump("shutdown"); err == nil {
					fmt.Fprintf(os.Stderr, "dlserve: flight recorder dumped to %s\n", path)
				}
			}
			os.Exit(0)
		}()
	}

	items := queue.New[core.Item](256)
	go func() {
		defer flight.DumpOnPanic()
		if err := backend.RunEpoch(core.CollectorFromQueue(items)); err != nil {
			fmt.Fprintf(os.Stderr, "dlserve: backend: %v\n", err)
			flight.Note("backend_error", err.Error())
		}
		if db, ok := backend.(*backends.DLBooster); ok {
			for _, e := range db.Events() {
				fmt.Fprintf(os.Stderr, "dlserve: %s: %s\n", e.Name, e.Detail)
			}
			if db.Degraded() {
				fmt.Fprintf(os.Stderr, "dlserve: served %d images on the CPU fallback path (%d retries, %d command timeouts)\n",
					db.FallbackDecodes(), db.Retries(), db.CmdTimeouts())
			}
		}
		backend.CloseBatches()
	}()
	go func() {
		if err := disp.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "dlserve: dispatcher: %v\n", err)
		}
	}()
	go func() {
		if _, err := inf.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "dlserve: engine: %v\n", err)
		}
	}()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("dlserve: %s backend, batch %d, listening on %s\n", backend.Name(), batch, ln.Addr())
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go handleConn(nc, cs, items)
	}
}

// serveMetrics exposes the registry over HTTP: /metrics is the
// Prometheus text exposition, /metrics.json the full snapshot,
// /trace.json the recent spans and events as a Chrome trace timeline.
func serveMetrics(addr string, reg *metrics.Registry) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		data, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteChromeTrace(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("dlserve: telemetry on http://%s/metrics\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// snapshotLoop periodically renders the registry to JSON, overwriting
// path each tick (or appending to stderr when path is empty) — the
// capture mechanism EXPERIMENTS.md uses for offline analysis.
func snapshotLoop(reg *metrics.Registry, every time.Duration, path string) {
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		data, err := reg.Snapshot().JSON()
		if err != nil {
			continue
		}
		if path == "" {
			fmt.Fprintf(os.Stderr, "%s\n", data)
			continue
		}
		// Atomic (temp + fsync + rename): a scraper reading the file
		// mid-write sees the previous snapshot, never a truncated one.
		_ = metrics.WriteFileAtomic(path, append(data, '\n'))
	}
}

// writeTraceFile renders the registry's recent spans and events as a
// Chrome trace timeline and writes it atomically.
func writeTraceFile(path string, reg *metrics.Registry) {
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteChromeTrace(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: trace export: %v\n", err)
		return
	}
	if err := metrics.WriteFileAtomic(path, buf.Bytes()); err != nil {
		fmt.Fprintf(os.Stderr, "dlserve: writing %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "dlserve: wrote trace timeline to %s\n", path)
}

func handleConn(nc net.Conn, cs *conns, items *queue.Queue[core.Item]) {
	id := cs.add(nc)
	defer func() {
		cs.remove(id)
		_ = nc.Close()
	}()
	seq := 0
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			return
		}
		length := binary.BigEndian.Uint32(hdr[:])
		if length == 0 || length > maxFrame {
			return
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(nc, payload); err != nil {
			return
		}
		item := core.Item{
			Ref:  fpga.DataRef{Inline: payload},
			Meta: core.ItemMeta{ClientID: id, Seq: seq, ReceivedAt: time.Now()},
		}
		seq++
		if err := items.Push(item); err != nil {
			return
		}
	}
}

func client(addr string, n int) error {
	spec := dataset.ILSVRCLike(minInt(n, 64))
	payloads := make([][]byte, spec.Count)
	for i := range payloads {
		data, err := spec.JPEG(i)
		if err != nil {
			return err
		}
		payloads[i] = data
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()

	done := make(chan error, 1)
	var latencies []float64
	go func() {
		var buf [16]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(nc, buf[:]); err != nil {
				done <- err
				return
			}
			latencies = append(latencies, float64(binary.BigEndian.Uint64(buf[8:]))/1e6)
		}
		done <- nil
	}()

	start := time.Now()
	var hdr [4]byte
	for i := 0; i < n; i++ {
		p := payloads[i%len(payloads)]
		binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
		if _, err := nc.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := nc.Write(p); err != nil {
			return err
		}
	}
	if err := <-done; err != nil {
		return err
	}
	elapsed := time.Since(start)
	sort.Float64s(latencies)
	fmt.Printf("sent %d images in %v (%.0f images/s)\n", n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("server-side receipt→prediction latency: p50=%.2fms p95=%.2fms max=%.2fms\n",
			latencies[len(latencies)/2], latencies[len(latencies)*95/100], latencies[len(latencies)-1])
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
