// Command dlbench regenerates the paper's evaluation: every figure of
// §5 plus the ablations, as deterministic virtual-time simulations.
//
//	dlbench                 # all figures, paper order
//	dlbench -fig fig7a      # one figure
//	dlbench -fig ablations  # the design-choice ablations
//	dlbench -list           # figure ids
//	dlbench -metrics        # traced end-to-end run + telemetry table
//	dlbench -doctor         # traced run + ranked bottleneck diagnosis
//	dlbench -json out.json  # traced run + schema-versioned bench result
//	dlbench -slo tput=900 -json out.json  # traced run judged against an SLO
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dlbooster/internal/cpukernel"
	"dlbooster/internal/experiments"
	"dlbooster/internal/metrics"
)

var runners = map[string]func() (experiments.Figure, error){
	"fig2":        experiments.Figure2,
	"fig5a":       experiments.Figure5a,
	"fig5b":       experiments.Figure5b,
	"fig5c":       experiments.Figure5c,
	"fig6":        experiments.Figure6,
	"fig6d":       experiments.Figure6d,
	"fig7a":       experiments.Figure7a,
	"fig7b":       experiments.Figure7b,
	"fig7c":       experiments.Figure7c,
	"fig8a":       experiments.Figure8a,
	"fig8b":       experiments.Figure8b,
	"fig8c":       experiments.Figure8c,
	"fig9":        experiments.Figure9,
	"headline":    experiments.Headline,
	"econ":        experiments.Econ,
	"future":      experiments.FutureWork,
	"hybrid":      experiments.HybridCache,
	"scale":       experiments.Scalability,
	"abl-copy":    experiments.AblationCopyMode,
	"abl-store":   experiments.AblationSharedStore,
	"abl-async":   experiments.AblationAsyncReader,
	"abl-units":   experiments.AblationUnitWidths,
	"abl-offload": experiments.AblationSelectiveOffload,
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (all, ablations, or a figure id)")
	list := flag.Bool("list", false, "list figure ids and exit")
	showMetrics := flag.Bool("metrics", false, "run a traced end-to-end pipeline and print the telemetry table")
	doctor := flag.Bool("doctor", false, "run a traced end-to-end pipeline and print the ranked bottleneck diagnosis")
	benchJSON := flag.String("json", "", "run a traced end-to-end pipeline and write a schema-versioned benchmark result (BENCH_<n>.json) to this path")
	metricsImages := flag.Int("metrics-images", 64, "with -metrics/-doctor/-json: images to push through the pipeline")
	metricsBatch := flag.Int("metrics-batch", 8, "with -metrics/-doctor/-json: batch size")
	noDecodeScale := flag.Bool("no-decode-scale", false, "with -metrics/-doctor/-json: disable the decode-to-scale fast path (full-resolution decode + resize)")
	noSIMD := flag.Bool("no-simd", false, "pin the portable scalar decode kernels and sequential entropy decode process-wide (the cpukernel kill switch), for ablations against the fast kernel layer")
	shards := flag.Int("shards", 0, "with -metrics/-doctor/-json: run the traced pipeline as this many fleet shards, each engine paced at -shard-rate (0 = classic single pipeline)")
	shardRate := flag.Float64("shard-rate", 40, "with -shards: modelled per-shard accelerator rate in images/s")
	replayEpochs := flag.Int("replay-epochs", 0, "with -metrics/-doctor/-json: after the first decode epoch, serve this many epochs from the tiered ReplayCache and measure their throughput (0 = classic single-epoch run)")
	cacheMode := flag.String("cache", "ram+nvme", "with -replay-epochs: cache configuration — cold (no cache), ram (RAM tier only) or ram+nvme (RAM tier with NVMe spill); the RAM tier is sized to half the decoded dataset")
	sloSpec := flag.String("slo", "", "with -metrics/-doctor/-json: sample telemetry during the traced run, judge it against this SLO spec (e.g. tput=900,p99ms=250,shed=0.001) and print the scorecard; with -json the scorecard is embedded in the result for the benchdiff -slo-gate")
	autotuneOn := flag.Bool("autotune", false, "with -json: run the adaptive-autotuner overload benchmark — a deterministic virtual-time simulation of a 2× open-loop overload served by a static tight-deadline config and again with the internal/control feedback loop actuating the knobs — and record both shed ledgers (BENCH_5.json); -slo overrides the scenario's default spec")
	flag.Parse()

	if *noSIMD {
		cpukernel.SetScalarOnly(true)
	}

	if *showMetrics || *doctor || *benchJSON != "" || *autotuneOn {
		// A bad SLO spec fails before the run, not after it.
		var slo *metrics.SLO
		if *sloSpec != "" {
			var err error
			if slo, err = metrics.ParseSLO(*sloSpec); err != nil {
				fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
				os.Exit(2)
			}
		}
		// One traced run feeds every instrumented view, so -metrics,
		// -doctor and -json can be combined without re-running.
		var res *tracedResult
		var fleetSnap *metrics.FleetSnapshot
		var err error
		switch {
		case *autotuneOn:
			// The overload scenario declares its own SLO when -slo is
			// unset, so the scorecard always lands in the result.
			res, slo, err = tracedAutotuneRun(*metricsBatch, slo)
		case *replayEpochs > 0:
			res, err = tracedReplayRun(*metricsImages, *metricsBatch, *replayEpochs, *cacheMode, *noDecodeScale, slo != nil)
		case *shards > 0:
			res, fleetSnap, err = tracedShardsRun(*metricsImages, *metricsBatch, *shards, *shardRate, *noDecodeScale, slo != nil)
		default:
			res, err = tracedRun(*metricsImages, *metricsBatch, *noDecodeScale, slo != nil)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
			os.Exit(1)
		}
		if *showMetrics {
			printMetrics(res)
		}
		if *doctor {
			if fleetSnap != nil {
				fmt.Print(metrics.DiagnoseFleet(fleetSnap, nil).Report())
			} else {
				fmt.Print(metrics.Diagnose(res.snap, nil).Report())
			}
		}
		card := slo.Evaluate(res.hist)
		if slo != nil {
			fmt.Print(card.Report())
		}
		if *benchJSON != "" {
			br := benchResult(res)
			br.SLO = card
			if err := br.WriteFile(*benchJSON); err != nil {
				fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("dlbench: wrote %s (%.0f images/s over %.3fs)\n",
				*benchJSON, br.Throughput, br.ElapsedSeconds)
		}
		return
	}

	if *list {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		fmt.Println(strings.Join(append([]string{"all", "ablations"}, ids...), "\n"))
		return
	}

	var figs []experiments.Figure
	var err error
	switch *fig {
	case "all":
		figs, err = experiments.All()
		if err == nil {
			var abls []experiments.Figure
			abls, err = experiments.Ablations()
			figs = append(figs, abls...)
		}
	case "ablations":
		figs, err = experiments.Ablations()
	default:
		run, ok := runners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "dlbench: unknown figure %q (try -list)\n", *fig)
			os.Exit(2)
		}
		var f experiments.Figure
		f, err = run()
		figs = []experiments.Figure{f}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
		os.Exit(1)
	}
	for i, f := range figs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(f.Render())
	}
}
