package main

// The -shards scaling mode: the traced end-to-end pipeline replicated
// into N fleet shards, each with its own decoder pipeline, dispatcher
// and paced inference engine. The engine is paced at -shard-rate
// images/s — a modelled per-shard accelerator well under the decode
// path's single-core capacity — so one shard is engine-capped and N
// shards scale until decode saturates the host, the serving-side form
// of the paper's "plug more FPGA devices" lever (§5.3). BENCH_3.json
// records the 2-shard run; tools/benchdiff -speedup gates the 2-vs-1
// shard ratio in CI.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/fleet"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
)

// tracedShardsRun pushes `images` items through a fleet of `shards`
// traced pipelines, least-loaded placement, each shard's engine paced
// at `rate` images/s. Returns the usual tracedResult (snap is the
// fleet total) plus the full rollup for the fleet doctor and trace
// views.
func tracedShardsRun(images, batchSize, shards int, rate float64, noDecodeScale, sample bool) (*tracedResult, *metrics.FleetSnapshot, error) {
	const size = tracedRunSize
	if shards < 1 {
		return nil, nil, fmt.Errorf("dlbench: -shards %d", shards)
	}
	if rate <= 0 {
		return nil, nil, fmt.Errorf("dlbench: -shard-rate %v", rate)
	}
	spec := dataset.ILSVRCLike(minInt(images, 64))
	fl, err := fleet.New(fleet.Config{
		Shards:   shards,
		QueueCap: maxInt(images, 1),
		NewBooster: func(int) (*core.Booster, error) {
			return core.New(core.Config{
				BatchSize: batchSize, OutW: size, OutH: size, Channels: 3,
				PoolBatches:         4,
				Metrics:             metrics.NewRegistry(),
				DisableScaledDecode: noDecodeScale,
			})
		},
	})
	if err != nil {
		return nil, nil, err
	}
	defer fl.Close()

	// The modelled per-shard accelerator: zero fixed cost, so the
	// steady-state rate is exactly `rate` regardless of batch size.
	profile := perf.InferProfile{
		Name: "shard-accelerator", MaxRate: rate,
		MaxBatch: batchSize, ImagePixels: size * size, InputChannels: 3,
	}

	var totalImages, totalBatches int64
	var engErr error
	var engErrOnce sync.Once
	var wg sync.WaitGroup
	for _, s := range fl.Shards() {
		b := s.Booster()
		dev, err := gpu.NewDevice(s.ID(), 1<<30)
		if err != nil {
			return nil, nil, err
		}
		defer dev.Close()
		solver, err := core.NewSolver(dev, 2, batchSize*size*size*3)
		if err != nil {
			return nil, nil, err
		}
		disp, err := core.NewDispatcher(b.Batches(), b.RecycleBatch,
			[]*core.Solver{solver}, core.DispatcherConfig{Metrics: b.Registry()})
		if err != nil {
			return nil, nil, err
		}
		inf, err := engine.NewInference(engine.InferenceConfig{
			Profile: profile, Solver: solver, Classes: 1000,
			PaceCompute: true,
			Metrics:     b.Registry(),
		})
		if err != nil {
			return nil, nil, err
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := disp.Run(); err != nil {
				engErrOnce.Do(func() { engErr = fmt.Errorf("shard %d dispatcher: %w", id, err) })
			}
		}(s.ID())
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stats, err := inf.Run()
			if err != nil {
				engErrOnce.Do(func() { engErr = fmt.Errorf("shard %d engine: %w", id, err) })
				return
			}
			atomic.AddInt64(&totalImages, stats.Images)
			atomic.AddInt64(&totalBatches, int64(stats.Batches))
		}(s.ID())
	}

	// Encode the corpus before the clock starts — JPEG encoding is
	// host-side data prep, not pipeline work, and it would serialise
	// the shards' intake if it ran inside the submit loop.
	payloads := make([][]byte, spec.Count)
	for i := range payloads {
		data, err := spec.JPEG(i)
		if err != nil {
			return nil, nil, err
		}
		payloads[i] = data
	}

	if sample {
		// Fleet.Drain stops the samplers before the queues close, so the
		// merged history ends on a final whole-run sample.
		fl.StartSampler(metrics.SamplerConfig{Interval: sloSampleEvery})
	}
	fl.Start()
	start := time.Now()
	for i := 0; i < images; i++ {
		item := core.Item{
			Ref:  fpga.DataRef{Inline: payloads[i%len(payloads)]},
			Meta: core.ItemMeta{Label: i % 1000, Seq: i, ReceivedAt: time.Now()},
		}
		if shard, adm := fl.Submit(item, uint64(i)); adm != fleet.AdmitOK {
			return nil, nil, fmt.Errorf("dlbench: item %d refused by shard %d (%v) with a corpus-sized queue", i, shard, adm)
		}
	}
	if err := fl.Drain(); err != nil {
		return nil, nil, err
	}
	wg.Wait()
	elapsed := time.Since(start)
	if engErr != nil {
		return nil, nil, engErr
	}

	fsnap := fl.Snapshot()
	var hist *metrics.History
	if sample {
		hist = fl.History()
	}
	return &tracedResult{
		snap:    fsnap.Total,
		hist:    hist,
		images:  totalImages,
		batches: int(totalBatches),
		elapsed: elapsed,
		config: metrics.BenchConfig{
			Images: images, Batch: batchSize, Size: size,
			Boards: 1, Shards: shards, ShardRate: rate,
		},
	}, fsnap, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
