package main

import (
	"fmt"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
)

// runMetrics drives one small instrumented end-to-end pipeline — corpus
// → FPGAReader → Dispatcher → inference engine — with full tracing on,
// and prints the unified telemetry table. It demonstrates the snapshot
// every component feeds (docs/METRICS.md is the field reference); the
// virtual-time figures stay separate because tracing measures the real
// pipeline, not the simulation.
func runMetrics(images, batchSize int) error {
	const size = 96
	spec := dataset.ILSVRCLike(minInt(images, 64))
	reg := metrics.NewRegistry()
	booster, err := core.New(core.Config{
		BatchSize: batchSize, OutW: size, OutH: size, Channels: 3,
		PoolBatches: 4,
		Metrics:     reg,
	})
	if err != nil {
		return err
	}
	defer booster.Close()

	items := make([]core.Item, images)
	for i := range items {
		data, err := spec.JPEG(i % spec.Count)
		if err != nil {
			return err
		}
		items[i] = core.Item{
			Ref:  fpga.DataRef{Inline: data},
			Meta: core.ItemMeta{Label: i % 1000, Seq: i, ReceivedAt: time.Now()},
		}
	}

	dev, err := gpu.NewDevice(0, 1<<30)
	if err != nil {
		return err
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batchSize*size*size*3)
	if err != nil {
		return err
	}
	disp, err := core.NewDispatcher(booster.Batches(), booster.RecycleBatch,
		[]*core.Solver{solver}, core.DispatcherConfig{Metrics: reg})
	if err != nil {
		return err
	}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 1000,
		Metrics: reg,
	})
	if err != nil {
		return err
	}

	errc := make(chan error, 2)
	go func() {
		err := booster.RunEpoch(core.CollectorFromItems(items))
		booster.CloseBatches()
		errc <- err
	}()
	go func() { errc <- disp.Run() }()
	stats, err := inf.Run()
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			return err
		}
	}
	fmt.Printf("dlbench -metrics: %d images through the traced pipeline (%d batches)\n\n",
		stats.Images, stats.Batches)
	fmt.Print(booster.Snapshot().Table())
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
