package main

import (
	"errors"
	"fmt"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
)

// tracedRunSize is the decoder output edge of the instrumented run —
// small enough that the run takes well under a second, part of the
// BenchConfig identity benchdiff compares on.
const tracedRunSize = 96

// tracedResult is what one instrumented end-to-end run produced, shared
// by the -metrics table, the -doctor report and the -json bench result.
type tracedResult struct {
	snap    *metrics.PipelineSnapshot
	images  int64
	batches int
	elapsed time.Duration
	config  metrics.BenchConfig
	// hist is the sampled telemetry history of an -slo run (nil when no
	// sampler was attached), the window the scorecard is judged against.
	hist *metrics.History
}

// sloSampleEvery is the sampler interval of an -slo run: fine enough
// that a sub-second traced run still yields a multi-sample window.
const sloSampleEvery = 10 * time.Millisecond

// attachSampler starts a telemetry sampler over the run's registry when
// the run declared an SLO; the returned stop function joins the sampler
// and hands back its history (nil stop/history when sampling is off).
func attachSampler(reg *metrics.Registry, sample bool) (stop func() *metrics.History) {
	if !sample {
		return func() *metrics.History { return nil }
	}
	s := metrics.NewSampler(reg, metrics.SamplerConfig{Interval: sloSampleEvery})
	s.Start()
	return func() *metrics.History {
		s.Stop()
		return s.History()
	}
}

// tracedRun drives one small instrumented end-to-end pipeline — corpus
// → FPGAReader → Dispatcher → inference engine — with full tracing on.
// It is the real pipeline under a deterministic corpus, not the
// virtual-time simulation the figures use, so its numbers are honest
// wall-clock measurements.
func tracedRun(images, batchSize int, noDecodeScale, sample bool) (*tracedResult, error) {
	const size = tracedRunSize
	spec := dataset.ILSVRCLike(minInt(images, 64))
	reg := metrics.NewRegistry()
	stopSampler := attachSampler(reg, sample)
	booster, err := core.New(core.Config{
		BatchSize: batchSize, OutW: size, OutH: size, Channels: 3,
		PoolBatches:         4,
		Metrics:             reg,
		DisableScaledDecode: noDecodeScale,
	})
	if err != nil {
		return nil, err
	}
	defer booster.Close()

	items := make([]core.Item, images)
	for i := range items {
		data, err := spec.JPEG(i % spec.Count)
		if err != nil {
			return nil, err
		}
		items[i] = core.Item{
			Ref:  fpga.DataRef{Inline: data},
			Meta: core.ItemMeta{Label: i % 1000, Seq: i, ReceivedAt: time.Now()},
		}
	}

	dev, err := gpu.NewDevice(0, 1<<30)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batchSize*size*size*3)
	if err != nil {
		return nil, err
	}
	disp, err := core.NewDispatcher(booster.Batches(), booster.RecycleBatch,
		[]*core.Solver{solver}, core.DispatcherConfig{Metrics: reg})
	if err != nil {
		return nil, err
	}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 1000,
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	errc := make(chan error, 2)
	go func() {
		err := booster.RunEpoch(core.CollectorFromItems(items))
		booster.CloseBatches()
		errc <- err
	}()
	go func() { errc <- disp.Run() }()
	stats, err := inf.Run()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			return nil, err
		}
	}
	return &tracedResult{
		snap:    booster.Snapshot(),
		images:  stats.Images,
		batches: stats.Batches,
		elapsed: time.Since(start),
		config: metrics.BenchConfig{
			Images: images, Batch: batchSize, Size: size,
			Boards: 1,
		},
		hist: stopSampler(),
	}, nil
}

// printMetrics renders the -metrics telemetry table.
func printMetrics(res *tracedResult) {
	fmt.Printf("dlbench -metrics: %d images through the traced pipeline (%d batches)\n\n",
		res.images, res.batches)
	fmt.Print(res.snap.Table())
}

// benchResult assembles the schema-versioned BENCH_<n>.json record from
// one traced run.
func benchResult(res *tracedResult) *metrics.BenchResult {
	elapsed := res.elapsed.Seconds()
	throughput := 0.0
	if elapsed > 0 {
		throughput = float64(res.images) / elapsed
	}
	name := "traced-e2e"
	if res.config.Shards > 0 {
		name = "traced-e2e-shards"
	}
	if res.config.CacheMode != "" {
		name = "traced-replay"
	}
	if res.config.AutotuneSpec != "" {
		name = "autotune-overload"
	}
	return &metrics.BenchResult{
		SchemaVersion:  metrics.BenchSchemaVersion,
		Name:           name,
		TakenAt:        time.Now().UTC(),
		GitSHA:         gitSHA(),
		GoVersion:      runtime.Version(),
		Config:         res.config,
		ElapsedSeconds: elapsed,
		Throughput:     throughput,
		Stages:         res.snap.Stages,
		Counters:       res.snap.Counters,
	}
}

// tracedReplayRun drives the instrumented pipeline through one decode
// epoch plus replayEpochs cache-served epochs, and measures throughput
// over the replay epochs only — the "epochs 2+" number of the §3.1
// hybrid service. cacheMode sizes the tiered cache so the decoded
// dataset is 2× the RAM tier:
//
//   - "cold":     no cache; every epoch re-decodes (the baseline)
//   - "ram":      RAM tier only — it overflows at 2×, drops wholesale,
//     and epochs 2+ fall back to re-decoding
//   - "ram+nvme": RAM tier + paced NVMe spill tier with compression;
//     epochs 2+ serve from the two tiers
//
// The tier hit counts land in the result's counter map
// (cache_ram_hit_images_total, cache_spill_hit_images_total,
// cache_redecode_images_total), so BENCH_4.json records throughput and
// hit rate from the same run.
func tracedReplayRun(images, batchSize, replayEpochs int, cacheMode string, noDecodeScale, sample bool) (*tracedResult, error) {
	const size = tracedRunSize
	spec := dataset.ILSVRCLike(minInt(images, 64))
	reg := metrics.NewRegistry()
	stopSampler := attachSampler(reg, sample)
	epochBytes := int64(images * size * size * 3)
	cfg := core.Config{
		BatchSize: batchSize, OutW: size, OutH: size, Channels: 3,
		PoolBatches:         4,
		Metrics:             reg,
		DisableScaledDecode: noDecodeScale,
	}
	switch cacheMode {
	case "cold":
	case "ram":
		cfg.Cache = core.CacheConfig{RAMBytes: epochBytes / 2}
	case "ram+nvme":
		spill := nvme.New(nvme.Config{
			ReadBandwidth:  perf.NVMeReadBandwidth,
			ReadLatency:    time.Duration(perf.NVMeReadLatency * float64(time.Second)),
			WriteBandwidth: perf.NVMeWriteBandwidth,
			WriteLatency:   time.Duration(perf.NVMeWriteLatency * float64(time.Second)),
		})
		cfg.Cache = core.CacheConfig{
			RAMBytes:   epochBytes / 2,
			Spill:      spill,
			SpillBytes: 2 * epochBytes,
			Compress:   true,
		}
	default:
		return nil, fmt.Errorf("unknown cache mode %q (cold, ram, ram+nvme)", cacheMode)
	}
	booster, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	defer booster.Close()

	items := make([]core.Item, images)
	for i := range items {
		data, err := spec.JPEG(i % spec.Count)
		if err != nil {
			return nil, err
		}
		items[i] = core.Item{
			Ref:  fpga.DataRef{Inline: data},
			Meta: core.ItemMeta{Label: i % 1000, Seq: i, ReceivedAt: time.Now()},
		}
	}

	dev, err := gpu.NewDevice(0, 1<<30)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batchSize*size*size*3)
	if err != nil {
		return nil, err
	}
	disp, err := core.NewDispatcher(booster.Batches(), booster.RecycleBatch,
		[]*core.Solver{solver}, core.DispatcherConfig{Metrics: reg})
	if err != nil {
		return nil, err
	}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 1000,
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}

	errc := make(chan error, 2)
	statc := make(chan engine.InferStats, 1)
	go func() { errc <- disp.Run() }()
	go func() {
		stats, err := inf.Run()
		statc <- stats
		errc <- err
	}()

	// Epoch 1 decodes (and captures, when a cache is configured)…
	var replayed time.Duration
	epochErr := func() error {
		if err := booster.RunEpoch(core.CollectorFromItems(items)); err != nil {
			return err
		}
		// …epochs 2+ are the measurement: replay from the tiers, or
		// re-decode when the mode has no usable cache (cold; RAM-only
		// after wholesale overflow — the errors.Is fallback dltrain uses).
		start := time.Now()
		for e := 0; e < replayEpochs; e++ {
			err := booster.ReplayCache()
			if errors.Is(err, core.ErrCacheUnavailable) {
				err = booster.RunEpoch(core.CollectorFromItems(items))
			}
			if err != nil {
				return err
			}
		}
		replayed = time.Since(start)
		return nil
	}()
	booster.CloseBatches()
	stats := <-statc
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil && epochErr == nil {
			epochErr = err
		}
	}
	if epochErr != nil {
		return nil, epochErr
	}
	return &tracedResult{
		snap:    booster.Snapshot(),
		images:  int64(images * replayEpochs),
		batches: stats.Batches,
		elapsed: replayed,
		config: metrics.BenchConfig{
			Images: images, Batch: batchSize, Size: size,
			Boards:    1,
			CacheMode: cacheMode, ReplayEpochs: replayEpochs,
		},
		hist: stopSampler(),
	}, nil
}

// gitSHA best-efforts the commit of the working tree ("unknown" when
// git or the repository is unavailable, e.g. in a release tarball).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
