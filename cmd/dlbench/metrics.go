package main

import (
	"fmt"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
)

// tracedRunSize is the decoder output edge of the instrumented run —
// small enough that the run takes well under a second, part of the
// BenchConfig identity benchdiff compares on.
const tracedRunSize = 96

// tracedResult is what one instrumented end-to-end run produced, shared
// by the -metrics table, the -doctor report and the -json bench result.
type tracedResult struct {
	snap    *metrics.PipelineSnapshot
	images  int64
	batches int
	elapsed time.Duration
	config  metrics.BenchConfig
}

// tracedRun drives one small instrumented end-to-end pipeline — corpus
// → FPGAReader → Dispatcher → inference engine — with full tracing on.
// It is the real pipeline under a deterministic corpus, not the
// virtual-time simulation the figures use, so its numbers are honest
// wall-clock measurements.
func tracedRun(images, batchSize int, noDecodeScale bool) (*tracedResult, error) {
	const size = tracedRunSize
	spec := dataset.ILSVRCLike(minInt(images, 64))
	reg := metrics.NewRegistry()
	booster, err := core.New(core.Config{
		BatchSize: batchSize, OutW: size, OutH: size, Channels: 3,
		PoolBatches:         4,
		Metrics:             reg,
		DisableScaledDecode: noDecodeScale,
	})
	if err != nil {
		return nil, err
	}
	defer booster.Close()

	items := make([]core.Item, images)
	for i := range items {
		data, err := spec.JPEG(i % spec.Count)
		if err != nil {
			return nil, err
		}
		items[i] = core.Item{
			Ref:  fpga.DataRef{Inline: data},
			Meta: core.ItemMeta{Label: i % 1000, Seq: i, ReceivedAt: time.Now()},
		}
	}

	dev, err := gpu.NewDevice(0, 1<<30)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	solver, err := core.NewSolver(dev, 2, batchSize*size*size*3)
	if err != nil {
		return nil, err
	}
	disp, err := core.NewDispatcher(booster.Batches(), booster.RecycleBatch,
		[]*core.Solver{solver}, core.DispatcherConfig{Metrics: reg})
	if err != nil {
		return nil, err
	}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: solver, Classes: 1000,
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	errc := make(chan error, 2)
	go func() {
		err := booster.RunEpoch(core.CollectorFromItems(items))
		booster.CloseBatches()
		errc <- err
	}()
	go func() { errc <- disp.Run() }()
	stats, err := inf.Run()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			return nil, err
		}
	}
	return &tracedResult{
		snap:    booster.Snapshot(),
		images:  stats.Images,
		batches: stats.Batches,
		elapsed: time.Since(start),
		config: metrics.BenchConfig{
			Images: images, Batch: batchSize, Size: size,
			Boards: 1,
		},
	}, nil
}

// printMetrics renders the -metrics telemetry table.
func printMetrics(res *tracedResult) {
	fmt.Printf("dlbench -metrics: %d images through the traced pipeline (%d batches)\n\n",
		res.images, res.batches)
	fmt.Print(res.snap.Table())
}

// benchResult assembles the schema-versioned BENCH_<n>.json record from
// one traced run.
func benchResult(res *tracedResult) *metrics.BenchResult {
	elapsed := res.elapsed.Seconds()
	throughput := 0.0
	if elapsed > 0 {
		throughput = float64(res.images) / elapsed
	}
	name := "traced-e2e"
	if res.config.Shards > 0 {
		name = "traced-e2e-shards"
	}
	return &metrics.BenchResult{
		SchemaVersion:  metrics.BenchSchemaVersion,
		Name:           name,
		TakenAt:        time.Now().UTC(),
		GitSHA:         gitSHA(),
		GoVersion:      runtime.Version(),
		Config:         res.config,
		ElapsedSeconds: elapsed,
		Throughput:     throughput,
		Stages:         res.snap.Stages,
		Counters:       res.snap.Counters,
	}
}

// gitSHA best-efforts the commit of the working tree ("unknown" when
// git or the repository is unavailable, e.g. in a release tarball).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
