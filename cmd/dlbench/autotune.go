// The -autotune benchmark: the adaptive-SLO-controller scenario behind
// BENCH_5.json. A 2× open-loop overload is offered to a queueing model
// of the admission-controlled serving pipeline twice — once pinned to a
// deliberately tight static batching deadline, once with the real
// internal/control feedback loop actuating the knob block every
// sampling tick — and the result records both runs' shed ledgers so
// tools/benchdiff can gate "autotune holds the SLO while shedding less
// than the static config".
//
// Like the paper figures (and unlike the other -json scenarios) this is
// a deterministic virtual-time simulation: the controller under test is
// the real one, stepped over telemetry snapshots fabricated from the
// model's state, but time is simtime and the service times come from
// internal/perf. A wall-clock run of this scenario is CPU-bound on the
// functional decoder and noisy by ±20% run to run — useless as a CI
// gate — while the simulation is exactly reproducible.
//
// The physics of the win is per-batch fixed cost. The static config's
// 300µs deadline seals 2-image batches (decoded images arrive every
// 1/FPGADecodeRate ≈ 179µs), and GoogLeNet's LatencyBatch means a
// 2-image batch runs at a fraction of the full-batch rate. The
// controller, missing the throughput objective with p99 headroom,
// grows the deadline ×3/2 per retune until batches fill, roughly
// doubling goodput — so under the same overload it sheds far less.

package main

import (
	"fmt"
	"time"

	"dlbooster/internal/control"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
	"dlbooster/internal/simtime"
)

// Scenario constants. The static deadline is tight enough that nearly
// every batch seals partial at 2 images; the phases are long enough
// that the controller's convergence transient (~4s with the default
// cooldown) is amortised away.
const (
	autotuneStaticTimeout = 300 * time.Microsecond
	autotuneQueueCap      = 64
	autotuneOverloadX     = 2.0
	autotunePhase         = 30 * time.Second
	autotuneTick          = 250 * time.Millisecond
	autotunePool          = 4
	// autotuneHistorySamples sizes the telemetry ring to hold every
	// tick of a phase (autotunePhase / autotuneTick = 120).
	autotuneHistorySamples = 128
)

// autotuneDefaultSpec is the SLO steered toward when -slo is not given:
// a throughput target at 97% of the profile's full-batch rate plus a
// generous tail budget. The 97% places the target between the
// penultimate and final operating points of the deadline-growth
// trajectory — the controller keeps growing until batches fill, then
// freezes inside the deadband with the objective met, so the embedded
// scorecard passes benchdiff's -slo-gate. Deliberately no shed
// objective: under a 2× open-loop overload shedding is structural, and
// the gate judges it against the static ledger instead.
func autotuneDefaultSpec(batch int) string {
	return fmt.Sprintf("tput=%.0f,p99ms=250,window=2s", 0.97*perf.GoogLeNet.Rate(batch))
}

// simEpoch anchors the fabricated snapshots' wall-clock timestamps.
// Any fixed instant works — only the differences matter — and a fixed
// one keeps the run exactly reproducible.
var simEpoch = time.Unix(0, 0).UTC()

// simKnobs is the simulated pipeline's knob block and its control.Plant
// adapter. The simulation is single-threaded (one event at a time), so
// plain fields are safe; Apply mirrors the clamps of the real setters.
type simKnobs struct {
	bt    time.Duration
	qc    int
	share float64
}

func (k *simKnobs) Knobs() control.Knobs {
	return control.Knobs{CPUShare: k.share, BatchTimeout: k.bt, QueueCap: k.qc}
}

func (k *simKnobs) Apply(n control.Knobs) {
	if n.BatchTimeout >= 0 {
		k.bt = n.BatchTimeout
	}
	if n.QueueCap > 0 {
		k.qc = n.QueueCap
		if k.qc > autotuneQueueCap {
			k.qc = autotuneQueueCap
		}
	}
	k.share = n.CPUShare
	if k.share < 0 {
		k.share = 0
	}
	if k.share > 1 {
		k.share = 1
	}
}

// autotuneSimStats is one simulated phase's ledger.
type autotuneSimStats struct {
	offered  int
	decoded  int64
	shed     int64
	batches  int64
	partials int64
	offloads int64
	lat      *metrics.Histogram
	// final is the cumulative telemetry snapshot at the horizon.
	final *metrics.PipelineSnapshot
}

// runAutotuneSim serves an open-loop arrival process (offered images/s
// for the horizon) through a queueing model of the serving pipeline:
// a bounded admission queue (shed at the effective-cap knob), a serial
// collector that decodes one image at a time (FPGA service time, or the
// CPU's for the knob's fractional offload share — inline, exactly like
// the real collector), dynamic batching against the deadline knob
// (armed when the first image joins, so a retune applies from the next
// batch — the SetBatchTimeout contract), a pool-limited number of
// batches in flight, and a copy+inference tail with perf-model service
// times. Every autotuneTick it fabricates a cumulative telemetry
// snapshot from the model's counters into hist and steps the
// controller, closing the real feedback loop over virtual time.
func runAutotuneSim(batch int, offered float64, horizon simtime.Time, knobs *simKnobs, hist *metrics.History, ctl *control.Controller) *autotuneSimStats {
	const size = tracedRunSize
	sim := simtime.New()
	decodeSrv := simtime.NewServer(sim, 1)
	copySrv := simtime.NewServer(sim, 1)
	gpuSrv := simtime.NewServer(sim, 1)

	fpgaSvc := simtime.FromSeconds(1 / perf.FPGADecodeRate())
	cpuSvc := simtime.FromSeconds(1 / perf.CPUDecodeRateILSVRC)

	st := &autotuneSimStats{lat: &metrics.Histogram{}}
	var (
		q          []simtime.Time // admitted arrival stamps
		building   []simtime.Time // the open batch's arrival stamps
		buildGen   int            // invalidates stale deadline events
		inflight   int            // sealed batches not yet through the GPU
		pulling    bool           // a decode is in service
		overdue    bool           // deadline fired while the pool was full
		offloadAcc float64        // fractional-share accumulator
	)

	var pull func()

	// seal publishes the open batch to the copy+inference tail and
	// frees the collector for the next one.
	seal := func(partial bool) {
		if len(building) == 0 {
			return
		}
		stamps := building
		building = nil
		buildGen++
		overdue = false
		if partial {
			st.partials++
		}
		st.batches++
		inflight++
		copyB := simtime.FromSeconds(perf.CopySeconds(len(stamps)*size*size*3, 1))
		gpuB := simtime.FromSeconds(perf.GoogLeNet.BatchSeconds(len(stamps)))
		copySrv.Visit(copyB, func() {
			gpuSrv.Visit(gpuB, func() {
				for _, t0 := range stamps {
					st.decoded++
					st.lat.Add((sim.Now() - t0).Milliseconds())
				}
				inflight--
				pull()
			})
		})
	}

	// pull advances the collector: seal an overdue batch once the pool
	// has room again, then decode the next queued image.
	pull = func() {
		if pulling {
			return
		}
		if overdue && inflight < autotunePool {
			seal(true)
		}
		if inflight >= autotunePool || len(q) == 0 {
			return
		}
		pulling = true
		t0 := q[0]
		q = q[1:]
		svc := fpgaSvc
		if knobs.share > 0 {
			if offloadAcc += knobs.share; offloadAcc >= 1 {
				offloadAcc--
				svc = cpuSvc
				st.offloads++
			}
		}
		decodeSrv.Visit(svc, func() {
			pulling = false
			if len(building) == 0 {
				// First image of a batch: arm the deadline at the
				// knob's current value.
				if bt := knobs.bt; bt > 0 {
					gen := buildGen
					sim.After(simtime.Time(bt), func() {
						if gen != buildGen {
							return
						}
						if inflight >= autotunePool {
							overdue = true
							return
						}
						seal(true)
						pull()
					})
				}
			}
			building = append(building, t0)
			if len(building) >= batch {
				seal(false)
			}
			pull()
		})
	}

	snapAt := func(now simtime.Time) *metrics.PipelineSnapshot {
		return &metrics.PipelineSnapshot{
			TakenAt:       simEpoch.Add(time.Duration(now)),
			UptimeSeconds: now.Seconds(),
			Counters: map[string]int64{
				"images_decoded_total":        st.decoded,
				"serve_shed_total":            st.shed,
				"batches_published_total":     st.batches,
				"serve_partial_flushes_total": st.partials,
				"offload_decodes_total":       st.offloads,
			},
			Gauges: map[string]float64{
				"knob_batch_timeout_ms": float64(knobs.bt) / float64(time.Millisecond),
				"knob_cpu_share":        knobs.share,
				"knob_queue_cap":        float64(knobs.qc),
			},
			Stages: map[string]metrics.Summary{
				metrics.StageBatchE2E: st.lat.Summarize(),
			},
			Queues: map[string]metrics.QueueDepth{
				"ingest_items": {Len: len(q), Cap: knobs.qc},
				"full_batch":   {Len: inflight, Cap: autotunePool},
			},
		}
	}

	interval := simtime.FromSeconds(1 / offered)
	var arrive func()
	arrive = func() {
		st.offered++
		if len(q) >= knobs.qc {
			st.shed++
		} else {
			q = append(q, sim.Now())
			pull()
		}
		if sim.Now()+interval <= horizon {
			sim.After(interval, arrive)
		}
	}
	sim.At(0, arrive)

	if hist != nil {
		tick := simtime.Time(autotuneTick)
		var sample func()
		sample = func() {
			hist.Record(snapAt(sim.Now()))
			if ctl != nil {
				ctl.Step()
			}
			if sim.Now()+tick <= horizon {
				sim.After(tick, sample)
			}
		}
		sim.After(tick, sample)
	}

	sim.RunUntil(horizon)
	st.final = snapAt(horizon)
	return st
}

// tracedAutotuneRun runs the BENCH_5 scenario: the same 2× overload
// served by the static tight-deadline config and by the autotuned one,
// with the static run's ledger folded into the autotuned run's counters
// (static_shed_total, static_images_decoded_total) for the benchdiff
// shed gate. The returned SLO is the spec the controller steered toward
// (the -slo flag, or the scenario default), which main evaluates into
// the embedded scorecard.
func tracedAutotuneRun(batchSize int, slo *metrics.SLO) (*tracedResult, *metrics.SLO, error) {
	if slo == nil {
		var err error
		if slo, err = metrics.ParseSLO(autotuneDefaultSpec(batchSize)); err != nil {
			return nil, nil, err
		}
	}
	offered := autotuneOverloadX * perf.GoogLeNet.Rate(batchSize)
	horizon := simtime.FromSeconds(autotunePhase.Seconds())

	// Phase 1: the static config under overload — no sampler, no
	// controller, the knobs never move.
	static := runAutotuneSim(batchSize, offered,
		horizon, &simKnobs{bt: autotuneStaticTimeout, qc: autotuneQueueCap}, nil, nil)

	// Phase 2: the same overload with the feedback controller stepping
	// over the sampled (fabricated) telemetry every tick.
	knobs := &simKnobs{bt: autotuneStaticTimeout, qc: autotuneQueueCap}
	hist := metrics.NewHistory(autotuneHistorySamples)
	ctl, err := control.New(knobs, hist, control.Config{
		SLO: slo, Interval: autotuneTick,
	})
	if err != nil {
		return nil, nil, err
	}
	auto := runAutotuneSim(batchSize, offered, horizon, knobs, hist, ctl)

	shedPct := func(s *autotuneSimStats) float64 {
		return 100 * float64(s.shed) / float64(s.offered)
	}
	fmt.Printf("dlbench -autotune: offering %.0f img/s (%.1f× the full-batch rate) for %v of virtual time per phase\n",
		offered, autotuneOverloadX, autotunePhase)
	fmt.Printf("  static   (timeout %v): decoded %d, shed %d (%.1f%% of offered), p99 %.1fms\n",
		autotuneStaticTimeout, static.decoded, static.shed, shedPct(static), static.lat.Percentile(99))
	fmt.Printf("  autotune (%d retunes):  decoded %d, shed %d (%.1f%%), p99 %.1fms; batch_timeout %v→%v, queue_cap %d, cpu_share %.3f\n",
		ctl.Retunes(), auto.decoded, auto.shed, shedPct(auto), auto.lat.Percentile(99),
		autotuneStaticTimeout, knobs.bt, knobs.qc, knobs.share)

	// The static run's ledger and the controller's decision counters
	// ride in the same counter map, so one BENCH_5.json carries both
	// sides of the comparison and the loop's visibility counters.
	snap := auto.final
	snap.Counters["static_shed_total"] = static.shed
	snap.Counters["static_images_decoded_total"] = static.decoded
	snap.Counters["control_decisions_total"] = ctl.Decisions()
	snap.Counters["control_retunes_total"] = ctl.Retunes()
	snap.Counters["control_holds_total"] = ctl.Holds()

	return &tracedResult{
		snap:    snap,
		images:  auto.decoded,
		batches: int(auto.batches),
		elapsed: autotunePhase,
		config: metrics.BenchConfig{
			Images: auto.offered, Batch: batchSize, Size: tracedRunSize,
			Boards:       1,
			AutotuneSpec: slo.String(),
			OverloadX:    autotuneOverloadX,
		},
		hist: hist,
	}, slo, nil
}
