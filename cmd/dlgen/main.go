// Command dlgen materialises the synthetic corpora: JPEG files on disk
// (the online backends' input) and/or an LMDB snapshot of offline
// records (the offline baseline's input).
//
//	dlgen -kind mnist -count 1000 -out ./data/mnist
//	dlgen -kind ilsvrc -count 200 -out ./data/ilsvrc -lmdb ./data/ilsvrc.lmdb -outw 224 -outh 224
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dlbooster/internal/dataset"
	"dlbooster/internal/lmdb"
)

func main() {
	kind := flag.String("kind", "mnist", "corpus kind: mnist or ilsvrc")
	count := flag.Int("count", 1000, "number of images")
	out := flag.String("out", "", "directory for JPEG files (optional)")
	lmdbPath := flag.String("lmdb", "", "path for an LMDB snapshot of decoded records (optional)")
	outW := flag.Int("outw", 0, "record width for -lmdb (default: source size)")
	outH := flag.Int("outh", 0, "record height for -lmdb (default: source size)")
	progressive := flag.Bool("progressive", false, "encode multi-scan (SOF2) JPEGs")
	flag.Parse()

	var spec dataset.Spec
	switch *kind {
	case "mnist":
		spec = dataset.MNISTLike(*count)
	case "ilsvrc":
		spec = dataset.ILSVRCLike(*count)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	spec.Progressive = *progressive
	if *out == "" && *lmdbPath == "" {
		fatal(fmt.Errorf("nothing to do: pass -out and/or -lmdb"))
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for i := 0; i < spec.Count; i++ {
			data, err := spec.JPEG(i)
			if err != nil {
				fatal(err)
			}
			name := filepath.Join(*out, fmt.Sprintf("%08d_label%03d.jpg", i, spec.Label(i)))
			if err := os.WriteFile(name, data, 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d JPEGs to %s\n", spec.Count, *out)
	}

	if *lmdbPath != "" {
		w, h := *outW, *outH
		if w == 0 {
			w = spec.W
		}
		if h == 0 {
			h = spec.H
		}
		db := lmdb.New()
		if err := dataset.ConvertToLMDB(spec, db, w, h); err != nil {
			fatal(err)
		}
		if err := db.SaveTo(*lmdbPath); err != nil {
			fatal(err)
		}
		fmt.Printf("converted %d records (%dx%d) into %s\n", spec.Count, w, h, *lmdbPath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dlgen: %v\n", err)
	os.Exit(1)
}
